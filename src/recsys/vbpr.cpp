#include "recsys/vbpr.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/io.hpp"

#include "obs/metrics.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "tensor/cost.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace taamr::recsys {

namespace {
inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

Tensor transposed_2d(const Tensor& t) {
  const std::int64_t r = t.dim(0), c = t.dim(1);
  Tensor out({c, r});
  for (std::int64_t i = 0; i < r; ++i) {
    for (std::int64_t j = 0; j < c; ++j) out.at(j, i) = t.at(i, j);
  }
  return out;
}
}

FeatureTransform FeatureTransform::fit(const Tensor& raw_features) {
  if (raw_features.ndim() != 2 || raw_features.dim(0) == 0) {
    throw std::invalid_argument("FeatureTransform::fit: expected non-empty [I, D]");
  }
  const std::int64_t n = raw_features.dim(0), d = raw_features.dim(1);
  FeatureTransform t;
  t.mean = Tensor({d});
  for (std::int64_t j = 0; j < d; ++j) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) acc += raw_features.at(i, j);
    t.mean[j] = static_cast<float>(acc / static_cast<double>(n));
  }
  double var = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      const double dev = raw_features.at(i, j) - t.mean[j];
      var += dev * dev;
    }
  }
  var /= static_cast<double>(n * d);
  const double stddev = std::sqrt(var);
  t.inv_scale = stddev > 1e-8 ? static_cast<float>(1.0 / stddev) : 1.0f;
  return t;
}

Tensor FeatureTransform::apply(const Tensor& raw_features) const {
  if (raw_features.ndim() != 2 || raw_features.dim(1) != mean.dim(0)) {
    throw std::invalid_argument("FeatureTransform::apply: feature dim mismatch");
  }
  Tensor out = raw_features;
  const std::int64_t n = out.dim(0), d = out.dim(1);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      out.at(i, j) = (out.at(i, j) - mean[j]) * inv_scale;
    }
  }
  return out;
}

Vbpr::Vbpr(const data::ImplicitDataset& dataset, const Tensor& raw_features,
           VbprConfig config, Rng& rng)
    : config_(config),
      transform_(FeatureTransform::fit(raw_features)),
      features_(transform_.apply(raw_features)),
      user_factors_({dataset.num_users, config.mf_factors}),
      item_factors_({dataset.num_items, config.mf_factors}),
      item_bias_({dataset.num_items}),
      user_visual_({dataset.num_users, config.visual_factors}),
      embedding_({config.visual_factors, raw_features.dim(1)}),
      visual_bias_({raw_features.dim(1)}),
      sampler_(dataset) {
  if (raw_features.dim(0) != dataset.num_items) {
    throw std::invalid_argument("Vbpr: features row count must equal num_items");
  }
  for (float& v : user_factors_.storage()) v = rng.gaussian_f(0.0f, config.init_stddev);
  for (float& v : item_factors_.storage()) v = rng.gaussian_f(0.0f, config.init_stddev);
  for (float& v : user_visual_.storage()) v = rng.gaussian_f(0.0f, config.init_stddev);
  for (float& v : embedding_.storage()) v = rng.gaussian_f(0.0f, config.init_stddev);
  rebuild_caches();
}

void Vbpr::rebuild_caches() {
  // theta_i = E f_i for all items: [I, D] x [A, D]^T -> [I, A].
  theta_cache_ = ops::matmul(features_, embedding_, /*trans_a=*/false, /*trans_b=*/true);
  visual_bias_cache_ = ops::matvec(features_, visual_bias_);
  // score_block right-hand sides, transposed once so every ranking pass
  // runs plain NN GEMMs without re-materializing Q^T / Theta^T.
  item_factors_t_ = transposed_2d(item_factors_);
  theta_cache_t_ = transposed_2d(theta_cache_);
  caches_fresh_ = true;
}

void Vbpr::require_fresh_caches() const {
  if (!caches_fresh_) {
    throw std::logic_error(
        "Vbpr: scoring caches are stale (call fit/set_item_features first)");
  }
}

void Vbpr::set_item_features(const Tensor& raw_features) {
  if (raw_features.ndim() != 2 || raw_features.dim(0) != num_items() ||
      raw_features.dim(1) != feature_dim()) {
    throw std::invalid_argument("Vbpr::set_item_features: shape mismatch");
  }
  features_ = transform_.apply(raw_features);
  rebuild_caches();
}

float Vbpr::score(std::int64_t user, std::int32_t item) const {
  require_fresh_caches();
  const std::int64_t k = config_.mf_factors, a = config_.visual_factors;
  const float* p = user_factors_.data() + user * k;
  const float* q = item_factors_.data() + item * k;
  const float* alpha = user_visual_.data() + user * a;
  const float* theta = theta_cache_.data() + item * a;
  float s = item_bias_[item] + visual_bias_cache_[item];
  for (std::int64_t f = 0; f < k; ++f) s += p[f] * q[f];
  for (std::int64_t f = 0; f < a; ++f) s += alpha[f] * theta[f];
  return s;
}

void Vbpr::score_all(std::int64_t user, std::span<float> out) const {
  require_fresh_caches();
  if (static_cast<std::int64_t>(out.size()) != num_items()) {
    throw std::invalid_argument("Vbpr::score_all: bad output size");
  }
  const std::int64_t k = config_.mf_factors, a = config_.visual_factors;
  const float* p = user_factors_.data() + user * k;
  const float* alpha = user_visual_.data() + user * a;
  for (std::int64_t i = 0; i < num_items(); ++i) {
    const float* q = item_factors_.data() + i * k;
    const float* theta = theta_cache_.data() + i * a;
    float s = item_bias_[i] + visual_bias_cache_[i];
    for (std::int64_t f = 0; f < k; ++f) s += p[f] * q[f];
    for (std::int64_t f = 0; f < a; ++f) s += alpha[f] * theta[f];
    out[static_cast<std::size_t>(i)] = s;
  }
  // Two dots plus two bias adds per item; each score reads both factor rows.
  cost::add(cost::Kernel::kRecsysScore,
            static_cast<double>(num_items()) * static_cast<double>(2 * (k + a) + 2),
            static_cast<double>(num_items()) * static_cast<double>(k + a) * 8.0);
}

void Vbpr::score_user_rows(const Tensor& p_block, const Tensor& a_block,
                           std::span<float> out) const {
  const std::int64_t users = p_block.dim(0);
  const std::int64_t items = num_items();
  Tensor s = ops::matmul(p_block, item_factors_t_);        // [U_b, I]
  ops::matmul_accumulate(s, a_block, theta_cache_t_);      // += alpha Theta^T
  for (std::int64_t r = 0; r < users; ++r) {
    const float* srow = s.data() + r * items;
    float* orow = out.data() + r * items;
    for (std::int64_t i = 0; i < items; ++i) {
      orow[i] = srow[i] + item_bias_[i] + visual_bias_cache_[i];
    }
  }
  // The GEMMs book themselves under the gemm family; the bias broadcast is
  // the remaining per-score work.
  cost::add(cost::Kernel::kRecsysScore,
            static_cast<double>(users) * static_cast<double>(items) * 2.0,
            static_cast<double>(users) * static_cast<double>(items) * 12.0);
}

void Vbpr::score_block(std::int64_t u_begin, std::int64_t u_end,
                       std::span<float> out) const {
  require_fresh_caches();
  const std::int64_t items = num_items();
  if (u_begin < 0 || u_end < u_begin || u_end > num_users() ||
      static_cast<std::int64_t>(out.size()) != (u_end - u_begin) * items) {
    throw std::invalid_argument("Vbpr::score_block: bad user range / output size");
  }
  const std::int64_t users = u_end - u_begin;
  if (users == 0) return;
  const std::int64_t k = config_.mf_factors, a = config_.visual_factors;

  // Gather the block's user rows (contiguous in P / alpha) and run the two
  // GEMMs against the cached transposes; the bias terms broadcast per item.
  Tensor p_block({users, k});
  std::memcpy(p_block.data(), user_factors_.data() + u_begin * k,
              static_cast<std::size_t>(users * k) * sizeof(float));
  Tensor a_block({users, a});
  std::memcpy(a_block.data(), user_visual_.data() + u_begin * a,
              static_cast<std::size_t>(users * a) * sizeof(float));
  score_user_rows(p_block, a_block, out);
}

void Vbpr::score_users(std::span<const std::int64_t> users,
                       std::span<float> out) const {
  require_fresh_caches();
  const std::int64_t items = num_items();
  if (out.size() != users.size() * static_cast<std::size_t>(items)) {
    throw std::invalid_argument("Vbpr::score_users: bad output size");
  }
  if (users.empty()) return;
  const std::int64_t k = config_.mf_factors, a = config_.visual_factors;
  Tensor p_block({static_cast<std::int64_t>(users.size()), k});
  Tensor a_block({static_cast<std::int64_t>(users.size()), a});
  for (std::size_t r = 0; r < users.size(); ++r) {
    const std::int64_t u = users[r];
    if (u < 0 || u >= num_users()) {
      throw std::invalid_argument("Vbpr::score_users: user out of range");
    }
    std::memcpy(p_block.data() + static_cast<std::int64_t>(r) * k,
                user_factors_.data() + u * k,
                static_cast<std::size_t>(k) * sizeof(float));
    std::memcpy(a_block.data() + static_cast<std::int64_t>(r) * a,
                user_visual_.data() + u * a,
                static_cast<std::size_t>(a) * sizeof(float));
  }
  score_user_rows(p_block, a_block, out);
}

float Vbpr::train_epoch(const data::ImplicitDataset& dataset, Rng& rng,
                        const std::optional<AdversarialOptions>& adversarial) {
  caches_fresh_ = false;
  const std::int64_t steps = dataset.num_train_feedback();
  const std::int64_t k = config_.mf_factors;
  const std::int64_t a = config_.visual_factors;
  const std::int64_t d = feature_dim();
  const float lr = config_.learning_rate;
  const float reg = config_.reg_factors;
  const float reg_b = config_.reg_bias;
  const float reg_v = config_.reg_visual;
  double loss_sum = 0.0;
  double grad_sum = 0.0;

  std::vector<float> theta_i(static_cast<std::size_t>(a)),
      theta_j(static_cast<std::size_t>(a)), dir(static_cast<std::size_t>(d));

  for (std::int64_t step = 0; step < steps; ++step) {
    const Triplet t = sampler_.sample(rng);
    float* p = user_factors_.data() + t.user * k;
    float* qi = item_factors_.data() + t.pos_item * k;
    float* qj = item_factors_.data() + t.neg_item * k;
    float* alpha = user_visual_.data() + t.user * a;
    const float* fi = features_.data() + t.pos_item * d;
    const float* fj = features_.data() + t.neg_item * d;

    // theta = E f for both items (E changes every step; no cache).
    for (std::int64_t r = 0; r < a; ++r) {
      const float* erow = embedding_.data() + r * d;
      float acc_i = 0.0f, acc_j = 0.0f;
      for (std::int64_t c = 0; c < d; ++c) {
        acc_i += erow[c] * fi[c];
        acc_j += erow[c] * fj[c];
      }
      theta_i[static_cast<std::size_t>(r)] = acc_i;
      theta_j[static_cast<std::size_t>(r)] = acc_j;
    }

    float x = item_bias_[t.pos_item] - item_bias_[t.neg_item];
    for (std::int64_t f = 0; f < k; ++f) x += p[f] * (qi[f] - qj[f]);
    for (std::int64_t f = 0; f < a; ++f) {
      x += alpha[f] * (theta_i[static_cast<std::size_t>(f)] -
                       theta_j[static_cast<std::size_t>(f)]);
    }
    float dvis = 0.0f;
    for (std::int64_t c = 0; c < d; ++c) dvis += visual_bias_[c] * (fi[c] - fj[c]);
    x += dvis;

    const float g = sigmoid(-x);
    loss_sum += -std::log(std::max(sigmoid(x), 1e-12f));

    // AMR regularizer (Eq. 8-10): perturb features along the loss gradient
    // direction dL/df = -+ g * (E^T alpha + beta), normalized to length eta.
    float g_adv = 0.0f;
    float gamma = 0.0f, eta_norm = 0.0f;
    if (adversarial.has_value()) {
      gamma = adversarial->gamma;
      float norm2 = 0.0f;
      for (std::int64_t c = 0; c < d; ++c) {
        float v = visual_bias_[c];
        for (std::int64_t r = 0; r < a; ++r) {
          v += embedding_.data()[r * d + c] * alpha[r];
        }
        dir[static_cast<std::size_t>(c)] = v;
        norm2 += v * v;
      }
      const float norm = std::sqrt(norm2);
      if (norm > 1e-12f) {
        // Delta_i = -eta * dir/|dir| (lowers s_ui), Delta_j = +eta * dir/|dir|.
        // x_adv = x - 2 * eta * |dir| * ... projected change below.
        eta_norm = adversarial->eta / norm;
        // The visual part of x is dir.(fi - fj). Perturbing fi -> fi - eta*u
        // and fj -> fj + eta*u with u = dir/|dir| changes x by exactly
        // dir.(-eta*u) - dir.(+eta*u) = -2*eta*|dir|.
        const float x_adv = x - 2.0f * adversarial->eta * norm;
        g_adv = sigmoid(-x_adv);
        loss_sum += gamma * -std::log(std::max(sigmoid(x_adv), 1e-12f));
      } else {
        gamma = 0.0f;
      }
    }
    const float g_total = g + gamma * g_adv;
    grad_sum += g_total;

    // Collaborative parameters see g_total (their gradient shape is shared
    // between the clean and adversarial terms).
    for (std::int64_t f = 0; f < k; ++f) {
      const float pu = p[f], qif = qi[f], qjf = qj[f];
      p[f] += lr * (g_total * (qif - qjf) - reg * pu);
      qi[f] += lr * (g_total * pu - reg * qif);
      qj[f] += lr * (-g_total * pu - reg * qjf);
    }
    item_bias_[t.pos_item] += lr * (g_total - reg_b * item_bias_[t.pos_item]);
    item_bias_[t.neg_item] += lr * (-g_total - reg_b * item_bias_[t.neg_item]);

    // alpha: clean term uses theta(f), adversarial term uses theta(f+Delta);
    // theta_adv_i - theta_adv_j = E(fi-fj) - 2*eta*E u.
    for (std::int64_t f = 0; f < a; ++f) {
      const float dtheta = theta_i[static_cast<std::size_t>(f)] -
                           theta_j[static_cast<std::size_t>(f)];
      float update = g * dtheta;
      if (g_adv != 0.0f && gamma != 0.0f) {
        const float* erow = embedding_.data() + f * d;
        float eu = 0.0f;
        for (std::int64_t c = 0; c < d; ++c) {
          eu += erow[c] * dir[static_cast<std::size_t>(c)];
        }
        update += gamma * g_adv * (dtheta - 2.0f * eta_norm * eu);
      }
      alpha[f] += lr * (update - reg * alpha[f]);
    }

    // E and beta: gradient is outer(alpha, df) and df respectively, with
    // df = fi - fj for the clean term and df - 2*eta*u for the adversarial.
    for (std::int64_t c = 0; c < d; ++c) {
      const float df = fi[c] - fj[c];
      float coeff = g * df;
      if (g_adv != 0.0f && gamma != 0.0f) {
        coeff += gamma * g_adv *
                 (df - 2.0f * eta_norm * dir[static_cast<std::size_t>(c)]);
      }
      visual_bias_[c] += lr * (coeff - reg_v * visual_bias_[c]);
      for (std::int64_t r = 0; r < a; ++r) {
        float& e = embedding_.data()[r * d + c];
        e += lr * (coeff * alpha[r] - reg_v * e);
      }
    }
  }
  last_epoch_mean_grad_ = grad_sum / static_cast<double>(steps);
  return static_cast<float>(loss_sum / static_cast<double>(steps));
}

namespace {
constexpr std::uint32_t kVbprMagic = 0x54414d56;  // "TAMV"
constexpr std::uint32_t kVbprVersion = 1;

void write_tensor(std::ostream& os, const Tensor& t) {
  io::write_i64_vector(os, t.shape());
  io::write_f32_vector(os, t.storage());
}

Tensor read_tensor(std::istream& is) {
  const auto shape = io::read_i64_vector(is);
  auto data = io::read_f32_vector(is);
  if (shape_numel(shape) != static_cast<std::int64_t>(data.size())) {
    throw std::runtime_error("Vbpr::load: tensor shape/payload mismatch");
  }
  return Tensor(Shape(shape), std::move(data));
}
}  // namespace

Vbpr::Vbpr(const data::ImplicitDataset& dataset, VbprConfig config, LoadTag)
    : config_(config), sampler_(dataset) {}

void Vbpr::save(std::ostream& os) const {
  io::write_magic(os, kVbprMagic, kVbprVersion);
  io::write_u64(os, static_cast<std::uint64_t>(config_.mf_factors));
  io::write_u64(os, static_cast<std::uint64_t>(config_.visual_factors));
  io::write_f32(os, config_.learning_rate);
  io::write_f32(os, config_.reg_factors);
  io::write_f32(os, config_.reg_bias);
  io::write_f32(os, config_.reg_visual);
  write_tensor(os, transform_.mean);
  io::write_f32(os, transform_.inv_scale);
  for (const Tensor* t : {&features_, &user_factors_, &item_factors_, &item_bias_,
                          &user_visual_, &embedding_, &visual_bias_}) {
    write_tensor(os, *t);
  }
}

Vbpr Vbpr::load(std::istream& is, const data::ImplicitDataset& dataset) {
  try {
    const std::uint32_t version = io::read_magic(is, kVbprMagic);
    if (version != kVbprVersion) {
      throw std::runtime_error("Vbpr::load: unsupported version");
    }
    VbprConfig config;
    config.mf_factors = static_cast<std::int64_t>(io::read_u64(is));
    config.visual_factors = static_cast<std::int64_t>(io::read_u64(is));
    config.learning_rate = io::read_f32(is);
    config.reg_factors = io::read_f32(is);
    config.reg_bias = io::read_f32(is);
    config.reg_visual = io::read_f32(is);
    if (config.mf_factors <= 0 || config.mf_factors > (1 << 20) ||
        config.visual_factors <= 0 || config.visual_factors > (1 << 20)) {
      throw std::runtime_error("Vbpr::load: implausible factor counts (corrupt checkpoint?)");
    }
    Vbpr model(dataset, config, LoadTag{});
    model.transform_.mean = read_tensor(is);
    model.transform_.inv_scale = io::read_f32(is);
    for (Tensor* t : {&model.features_, &model.user_factors_, &model.item_factors_,
                      &model.item_bias_, &model.user_visual_, &model.embedding_,
                      &model.visual_bias_}) {
      *t = read_tensor(is);
    }
    if (model.features_.ndim() != 2 || model.features_.dim(0) != dataset.num_items ||
        model.user_factors_.dim(0) != dataset.num_users) {
      throw std::runtime_error("Vbpr::load: checkpoint does not match the dataset");
    }
    model.rebuild_caches();
    return model;
  } catch (const std::runtime_error& e) {
    // Low-level io errors gain checkpoint context; our own pass through.
    const std::string what = e.what();
    if (what.rfind("Vbpr::load", 0) == 0) throw;
    throw std::runtime_error("Vbpr::load: corrupt or truncated checkpoint (" + what + ")");
  }
}

void Vbpr::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("Vbpr::save_file: cannot open " + path);
  save(os);
}

Vbpr Vbpr::load_file(const std::string& path, const data::ImplicitDataset& dataset) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("Vbpr::load_file: cannot open " + path);
  return load(is, dataset);
}

void Vbpr::fit(const data::ImplicitDataset& dataset, Rng& rng, bool verbose) {
  auto& loss_hist = obs::MetricsRegistry::global().histogram(
      "vbpr_epoch_loss", {}, obs::exponential_bounds(1e-3, 2.0, 20));
  for (std::int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    TAAMR_TRACE_SPAN("recsys/vbpr/epoch");
    Stopwatch epoch_timer;
    const float loss = train_epoch(dataset, rng);
    loss_hist.observe(static_cast<double>(loss));
    obs::runlog("vbpr_epoch",
                {{"epoch", static_cast<double>(epoch + 1)},
                 {"loss", static_cast<double>(loss)},
                 {"mean_grad", last_epoch_mean_grad_},
                 {"examples_per_sec",
                  static_cast<double>(dataset.num_train_feedback()) /
                      std::max(epoch_timer.seconds(), 1e-9)}});
    if (verbose && (epoch + 1) % 20 == 0) {
      log_info() << name() << " epoch " << (epoch + 1) << "/" << config_.epochs
                 << " loss=" << loss;
    }
  }
  rebuild_caches();
}

}  // namespace taamr::recsys
