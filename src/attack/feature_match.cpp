#include "attack/feature_match.hpp"

#include <algorithm>

#include "tensor/ops.hpp"

namespace taamr::attack {

FeatureMatch::FeatureMatch(AttackConfig config) : config_(config) {
  config_.validate();
}

void FeatureMatch::project(Tensor& candidate, const Tensor& original) const {
  check_same_shape(candidate, original, "FeatureMatch::project");
  const float eps = config_.epsilon;
  const std::int64_t n = candidate.numel();
  float* c = candidate.data();
  const float* o = original.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float lo = std::max(o[i] - eps, config_.clip_min);
    const float hi = std::min(o[i] + eps, config_.clip_max);
    c[i] = std::clamp(c[i], lo, hi);
  }
}

Tensor FeatureMatch::perturb(nn::Classifier& classifier, const Tensor& images,
                             const Tensor& target_features, Rng& rng) {
  if (images.ndim() != 4) {
    throw std::invalid_argument("FeatureMatch: expected [N, C, H, W] images");
  }
  if (target_features.ndim() != 2 || target_features.dim(0) != images.dim(0) ||
      target_features.dim(1) != classifier.feature_dim()) {
    throw std::invalid_argument("FeatureMatch: target features must be [N, D]");
  }
  Tensor adversarial = images;
  if (config_.random_start) {
    for (float& v : adversarial.storage()) {
      v += rng.uniform_f(-config_.epsilon, config_.epsilon);
    }
    project(adversarial, images);
  }
  const float step = config_.effective_step();  // always descend the distance
  for (std::int64_t it = 0; it < config_.iterations; ++it) {
    const Tensor grad =
        classifier.feature_input_gradient(adversarial, target_features);
    ops::axpy_inplace(adversarial, -step, ops::sign(grad));
    project(adversarial, images);
  }
  return adversarial;
}

}  // namespace taamr::attack
