// Model checkpointing: MiniResNetConfig + every Param (by position, with
// shape verification) in a versioned binary container.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/classifier.hpp"

namespace taamr::nn {

void save_classifier(std::ostream& os, const Classifier& classifier);
Classifier load_classifier(std::istream& is);

void save_classifier_file(const std::string& path, const Classifier& classifier);
Classifier load_classifier_file(const std::string& path);

}  // namespace taamr::nn
