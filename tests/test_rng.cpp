#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace taamr {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 10))];
  for (int c : counts) EXPECT_GT(c, 700);  // ~1000 expected
}

TEST(Rng, UniformU64SmallNIsUnbiased) {
  Rng rng(13);
  int zeros = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.uniform_u64(2) == 0) ++zeros;
  }
  EXPECT_NEAR(zeros / 20000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.015);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(31);
  Rng child = parent.fork(0);
  // Child stream must not replay the parent stream.
  Rng parent_copy(31);
  (void)parent_copy.next_u64();  // parent consumed one draw to fork
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent_copy.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForksWithDifferentStreamsDiffer) {
  Rng a(5), b(5);
  Rng f1 = a.fork(1);
  Rng f2 = b.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.sample_without_replacement(20, 10);
    ASSERT_EQ(s.size(), 10u);
    std::sort(s.begin(), s.end());
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    for (std::size_t x : s) EXPECT_LT(x, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(43);
  auto s = rng.sample_without_replacement(8, 8);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleWithoutReplacementRejectsKGreaterThanN) {
  Rng rng(47);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, CategoricalMatchesWeights) {
  Rng rng(53);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng rng(59);
  EXPECT_THROW(rng.categorical(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(rng.categorical(std::vector<double>{1.0, -0.1}), std::invalid_argument);
  EXPECT_THROW(rng.categorical(std::vector<double>{0.0, 0.0}), std::invalid_argument);
}

TEST(AliasTable, MatchesWeights) {
  const std::vector<double> w = {5.0, 1.0, 2.0, 2.0};
  AliasTable table(w);
  Rng rng(61);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.2, 0.01);
}

TEST(AliasTable, SingleElement) {
  AliasTable table(std::vector<double>{3.0});
  Rng rng(67);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  AliasTable table(std::vector<double>{0.0, 1.0, 0.0, 1.0});
  Rng rng(71);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t s = table.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTable, RejectsBadInput) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0}), std::invalid_argument);
}

// Property sweep: alias tables reproduce arbitrary weight profiles.
class AliasTableProfile : public ::testing::TestWithParam<int> {};

TEST_P(AliasTableProfile, EmpiricalMatchesExpected) {
  Rng setup(100 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t k = 2 + setup.index(12);
  std::vector<double> w(k);
  double total = 0.0;
  for (double& x : w) {
    x = setup.uniform(0.05, 4.0);
    total += x;
  }
  AliasTable table(w);
  Rng rng(200 + static_cast<std::uint64_t>(GetParam()));
  std::vector<int> counts(k, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), w[i] / total, 0.02)
        << "component " << i << " of profile " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, AliasTableProfile, ::testing::Range(0, 8));

TEST(Zipf, WeightsFollowTheRankLaw) {
  const auto w = zipf_weights(6, 1.0);
  ASSERT_EQ(w.size(), 6u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  for (std::size_t r = 1; r < w.size(); ++r) {
    EXPECT_LT(w[r], w[r - 1]) << "rank " << r;
    EXPECT_NEAR(w[r], 1.0 / static_cast<double>(r + 1), 1e-12);
  }
  // alpha = 0 degenerates to uniform.
  for (const double x : zipf_weights(4, 0.0)) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Zipf, RejectsBadInput) {
  EXPECT_THROW(zipf_weights(0, 1.0), std::invalid_argument);
  EXPECT_THROW(zipf_weights(8, -0.5), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(Zipf, SamplerIsDeterministicPerSeed) {
  ZipfSampler zipf(1000, 1.1);
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 200; ++i) {
    const std::size_t sa = zipf.sample(a);
    EXPECT_EQ(sa, zipf.sample(b));
    diverged = diverged || sa != zipf.sample(c);
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical streams";
}

TEST(Zipf, EmpiricalTopShareMatchesAnalytic) {
  const std::size_t n = 500;
  ZipfSampler zipf(n, 1.0);
  const std::size_t hot = n / 100 + 1;  // hottest 1%
  const double expected = zipf.top_share(hot);
  EXPECT_GT(expected, 0.05);  // skew is real at alpha=1
  Rng rng(7);
  const int draws = 60000;
  int in_hot = 0;
  for (int i = 0; i < draws; ++i) {
    if (zipf.sample(rng) < hot) ++in_hot;
  }
  EXPECT_NEAR(in_hot / static_cast<double>(draws), expected, 0.02);
}

TEST(Zipf, TopShareSaturatesAtOne) {
  ZipfSampler zipf(64, 0.8);
  EXPECT_DOUBLE_EQ(zipf.top_share(64), 1.0);
  EXPECT_DOUBLE_EQ(zipf.top_share(1000), 1.0);
  EXPECT_DOUBLE_EQ(zipf.top_share(0), 0.0);
  EXPECT_LT(zipf.top_share(1), zipf.top_share(2));
}

}  // namespace
}  // namespace taamr
