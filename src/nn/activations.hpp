// Pointwise activation layers.
#pragma once

#include "nn/layer.hpp"

namespace taamr::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_mask_;  // 1 where input > 0
};

class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f) : slope_(negative_slope) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override;
  float slope() const { return slope_; }

 private:
  float slope_;
  Tensor cached_input_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

}  // namespace taamr::nn
