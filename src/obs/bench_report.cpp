#include "obs/bench_report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace taamr::obs {

namespace {

void append_labels_json(std::ostringstream& os, const Labels& labels) {
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << '"' << json::escape(k) << "\":\"" << json::escape(v) << '"';
  }
  os << '}';
}

}  // namespace

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\n\"schema_version\":" << kBenchSchemaVersion << ",\n\"name\":\""
     << json::escape(name) << "\",\n\"config\":{"
     << "\"scale\":" << json::number(scale) << ",\"seed\":" << seed
     << ",\"threads\":" << threads << ",\"git_sha\":\"" << json::escape(git_sha)
     << "\",\"build_type\":\"" << json::escape(build_type) << '"';
  for (const auto& [key, value] : extra_config) {
    os << ",\"" << json::escape(key) << "\":" << json::number(value);
  }
  os << "},\n"
     << "\"wall_seconds\":" << json::number(wall_seconds) << ",\n"
     << "\"throughput\":{"
     << "\"examples\":" << json::number(examples)
     << ",\"examples_per_sec\":" << json::number(examples_per_sec())
     << ",\"flops_total\":" << json::number(flops_total)
     << ",\"gflops\":" << json::number(gflops())
     << ",\"bytes_total\":" << json::number(bytes_total)
     << ",\"gib_per_sec\":" << json::number(gib_per_sec()) << ",\"kernels\":[";
  bool first = true;
  for (const KernelCost& k : kernels) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"kernel\":\"" << json::escape(k.kernel)
       << "\",\"flops\":" << json::number(k.flops)
       << ",\"bytes\":" << json::number(k.bytes) << '}';
  }
  os << "]},\n\"memory\":{\"peak_rss_bytes\":" << peak_rss_bytes
     << ",\"tensor_high_water_bytes\":" << tensor_high_water_bytes << "},\n"
     << "\"metrics\":[";
  first = true;
  for (const BenchMetric& m : metrics) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"" << json::escape(m.name) << "\",\"labels\":";
    append_labels_json(os, m.labels);
    os << ",\"value\":" << json::number(m.value) << '}';
  }
  os << "]\n}\n";
  return os.str();
}

void BenchReport::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("BenchReport: cannot open " + path);
  os << to_json();
}

namespace {

const json::Value* require(const json::Value& obj, const char* key,
                           json::Value::Type type, const std::string& where,
                           std::vector<std::string>& errors) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    errors.push_back(where + ": missing key '" + key + "'");
    return nullptr;
  }
  if (v->type != type) {
    errors.push_back(where + ": key '" + key + "' has the wrong type");
    return nullptr;
  }
  return v;
}

}  // namespace

std::vector<std::string> validate_bench_report(const json::Value& doc) {
  std::vector<std::string> errors;
  if (!doc.is_object()) {
    errors.push_back("top level: expected an object");
    return errors;
  }
  using T = json::Value::Type;
  if (const json::Value* v =
          require(doc, "schema_version", T::kNumber, "top level", errors)) {
    if (static_cast<int>(v->num) != kBenchSchemaVersion) {
      errors.push_back("schema_version: expected " +
                       std::to_string(kBenchSchemaVersion) + ", got " +
                       std::to_string(v->num));
    }
  }
  require(doc, "name", T::kString, "top level", errors);
  if (const json::Value* cfg =
          require(doc, "config", T::kObject, "top level", errors)) {
    require(*cfg, "scale", T::kNumber, "config", errors);
    require(*cfg, "seed", T::kNumber, "config", errors);
    require(*cfg, "threads", T::kNumber, "config", errors);
    require(*cfg, "git_sha", T::kString, "config", errors);
    require(*cfg, "build_type", T::kString, "config", errors);
  }
  if (const json::Value* v =
          require(doc, "wall_seconds", T::kNumber, "top level", errors)) {
    if (!(v->num >= 0.0)) errors.push_back("wall_seconds: must be >= 0");
  }
  if (const json::Value* tp =
          require(doc, "throughput", T::kObject, "top level", errors)) {
    for (const char* key :
         {"examples", "examples_per_sec", "flops_total", "gflops",
          "bytes_total", "gib_per_sec"}) {
      if (const json::Value* v = require(*tp, key, T::kNumber, "throughput", errors)) {
        if (!(v->num >= 0.0)) {
          errors.push_back(std::string("throughput.") + key + ": must be >= 0");
        }
      }
    }
    if (const json::Value* ks =
            require(*tp, "kernels", T::kArray, "throughput", errors)) {
      for (std::size_t i = 0; i < ks->array.size(); ++i) {
        const std::string where = "throughput.kernels[" + std::to_string(i) + "]";
        if (!ks->array[i].is_object()) {
          errors.push_back(where + ": expected an object");
          continue;
        }
        require(ks->array[i], "kernel", T::kString, where, errors);
        require(ks->array[i], "flops", T::kNumber, where, errors);
        require(ks->array[i], "bytes", T::kNumber, where, errors);
      }
    }
  }
  if (const json::Value* mem =
          require(doc, "memory", T::kObject, "top level", errors)) {
    require(*mem, "peak_rss_bytes", T::kNumber, "memory", errors);
    require(*mem, "tensor_high_water_bytes", T::kNumber, "memory", errors);
  }
  if (const json::Value* ms =
          require(doc, "metrics", T::kArray, "top level", errors)) {
    for (std::size_t i = 0; i < ms->array.size(); ++i) {
      const std::string where = "metrics[" + std::to_string(i) + "]";
      if (!ms->array[i].is_object()) {
        errors.push_back(where + ": expected an object");
        continue;
      }
      require(ms->array[i], "name", T::kString, where, errors);
      require(ms->array[i], "labels", T::kObject, where, errors);
      require(ms->array[i], "value", T::kNumber, where, errors);
    }
  }
  return errors;
}

BenchReport parse_bench_report(const json::Value& doc) {
  const std::vector<std::string> errors = validate_bench_report(doc);
  if (!errors.empty()) {
    std::string msg = "invalid bench report:";
    for (const std::string& e : errors) msg += "\n  " + e;
    throw std::runtime_error(msg);
  }
  BenchReport r;
  r.name = doc.find("name")->str;
  const json::Value& cfg = *doc.find("config");
  r.scale = cfg.find("scale")->num;
  r.seed = static_cast<std::uint64_t>(cfg.find("seed")->num);
  r.threads = static_cast<std::int64_t>(cfg.find("threads")->num);
  r.git_sha = cfg.find("git_sha")->str;
  r.build_type = cfg.find("build_type")->str;
  r.wall_seconds = doc.find("wall_seconds")->num;
  const json::Value& tp = *doc.find("throughput");
  r.examples = tp.find("examples")->num;
  r.flops_total = tp.find("flops_total")->num;
  r.bytes_total = tp.find("bytes_total")->num;
  for (const json::Value& k : tp.find("kernels")->array) {
    r.kernels.push_back(KernelCost{k.find("kernel")->str, k.find("flops")->num,
                                   k.find("bytes")->num});
  }
  const json::Value& mem = *doc.find("memory");
  r.peak_rss_bytes = static_cast<std::int64_t>(mem.find("peak_rss_bytes")->num);
  r.tensor_high_water_bytes =
      static_cast<std::int64_t>(mem.find("tensor_high_water_bytes")->num);
  for (const json::Value& m : doc.find("metrics")->array) {
    BenchMetric metric;
    metric.name = m.find("name")->str;
    for (const auto& [k, v] : m.find("labels")->object) {
      metric.labels.emplace_back(k, v.str);
    }
    metric.value = m.find("value")->num;
    r.metrics.push_back(std::move(metric));
  }
  return r;
}

namespace {

std::string metric_key(const BenchMetric& m) {
  Labels sorted = m.labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = m.name;
  for (const auto& [k, v] : sorted) key += "{" + k + "=" + v + "}";
  return key;
}

std::string pct(double ratio) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << ratio * 100.0 << '%';
  return os.str();
}

}  // namespace

std::vector<std::string> compare_bench_reports(const BenchReport& baseline,
                                               const BenchReport& current,
                                               const CompareOptions& options) {
  std::vector<std::string> regressions;
  const double t = options.threshold;

  if (baseline.wall_seconds > 0.0 &&
      current.wall_seconds > baseline.wall_seconds * (1.0 + t)) {
    regressions.push_back(
        "wall_seconds: " + json::number(baseline.wall_seconds) + " -> " +
        json::number(current.wall_seconds) + " (+" +
        pct(current.wall_seconds / baseline.wall_seconds - 1.0) +
        ", allowed +" + pct(t) + ")");
  }
  if (baseline.gflops() > 0.0 && current.gflops() < baseline.gflops() * (1.0 - t)) {
    regressions.push_back("gflops: " + json::number(baseline.gflops()) + " -> " +
                          json::number(current.gflops()) + " (" +
                          pct(current.gflops() / baseline.gflops() - 1.0) +
                          ", allowed -" + pct(t) + ")");
  }
  if (baseline.examples_per_sec() > 0.0 &&
      current.examples_per_sec() < baseline.examples_per_sec() * (1.0 - t)) {
    regressions.push_back(
        "examples_per_sec: " + json::number(baseline.examples_per_sec()) +
        " -> " + json::number(current.examples_per_sec()) + " (" +
        pct(current.examples_per_sec() / baseline.examples_per_sec() - 1.0) +
        ", allowed -" + pct(t) + ")");
  }

  std::vector<std::pair<std::string, double>> current_metrics;
  current_metrics.reserve(current.metrics.size());
  for (const BenchMetric& m : current.metrics) {
    current_metrics.emplace_back(metric_key(m), m.value);
  }
  std::sort(current_metrics.begin(), current_metrics.end());
  for (const BenchMetric& m : baseline.metrics) {
    const std::string key = metric_key(m);
    const auto it = std::lower_bound(
        current_metrics.begin(), current_metrics.end(), key,
        [](const auto& a, const std::string& k) { return a.first < k; });
    if (it == current_metrics.end() || it->first != key) {
      regressions.push_back("metric " + key + ": present in baseline, missing now");
      continue;
    }
    const double denom = std::max(std::fabs(m.value), std::fabs(it->second));
    if (denom == 0.0) continue;
    const double rel = std::fabs(it->second - m.value) / denom;
    if (rel > t) {
      regressions.push_back("metric " + key + ": " + json::number(m.value) +
                            " -> " + json::number(it->second) + " (drift " +
                            pct(rel) + ", allowed " + pct(t) + ")");
    }
  }
  return regressions;
}

}  // namespace taamr::obs
