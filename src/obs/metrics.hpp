// Process-wide metrics registry: named, labeled Counter / Gauge / Histogram
// families with lock-free (atomic) hot paths and a JSON snapshot export.
//
// Usage:
//   auto& c = obs::MetricsRegistry::global().counter(
//       "pipeline_stage_seconds_total", {{"stage", "prepare"}});
//   c.add(timer.seconds());
//
// Registration (name + labels -> instrument) takes a mutex; the returned
// reference is stable for the registry's lifetime, so hot paths grab the
// handle once and then only touch atomics. Snapshots are weakly consistent:
// a concurrent observe() may or may not be included, but every field read
// is a whole atomic value.
//
// If TAAMR_METRICS_OUT=<path> is set in the environment, the registry
// writes its JSON snapshot to <path> at process exit, which gives every
// binary (benches, examples, the CLI) a machine-readable metrics dump for
// free. `telemetry_enabled()` reports whether any observability knob
// (TAAMR_METRICS_OUT / TAAMR_TRACE / TAAMR_RUN_LOG) is active; hot-path
// call sites use it to skip instrumentation entirely on plain runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace taamr::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

// True iff any of TAAMR_METRICS_OUT / TAAMR_TRACE / TAAMR_RUN_LOG is set.
// Evaluated once at first call.
bool telemetry_enabled();

// Replaces every "%p" in `path` with the decimal process id, so concurrent
// producers (e.g. a load bench and the server it forks, both started with
// TAAMR_METRICS_OUT / TAAMR_TRACE / TAAMR_AUDIT_LOG pointing at the same
// template) write distinct files instead of clobbering each other at exit.
// Paths without "%p" pass through unchanged. The env readers of all three
// knobs apply this at configuration time.
std::string expand_pid_path(std::string path);
std::string expand_pid_path(std::string path, long pid);  // tests

// Quantile by linear interpolation inside the bucket holding the q-th
// observation, with the tracked min/max tightening the open-ended first and
// overflow buckets (Prometheus histogram_quantile style). Shared by
// Histogram and SlidingWindowHistogram snapshots; 0 when count == 0.
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& buckets,
                       std::uint64_t count, double min, double max, double q);

namespace detail {
// C++20 has atomic<double>::fetch_add but libstdc++ lowers it to a CAS loop
// anyway; spelling it out keeps the semantics explicit.
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

// Monotonically increasing sum.
class Counter {
 public:
  void add(double v) { detail::atomic_add(value_, v); }
  void increment() { add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Last-write-wins instantaneous value, with add() for up/down tracking
// (queue depths, busy-worker counts).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { detail::atomic_add(value_, v); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Upper bucket bounds start * factor^k for k in [0, count).
std::vector<double> exponential_bounds(double start, double factor, int count);

// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus
// one overflow bucket. Also tracks count/sum/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  // Quantile estimate by linear interpolation inside the bucket holding the
  // q-th observation (Prometheus histogram_quantile style, but with the
  // tracked min/max tightening the first and overflow buckets). Weakly
  // consistent like every other read; 0 when empty. See DESIGN.md §5 for
  // the bucket boundaries this interpolates over.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;  // sorted, strictly increasing
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

class MetricsRegistry {
 public:
  // Process-wide registry. Constructed on first use; at destruction writes
  // the snapshot to $TAAMR_METRICS_OUT when that variable is set.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  explicit MetricsRegistry(std::string dump_path)
      : dump_path_(std::move(dump_path)) {}
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  // `bounds` is only consulted when the (name, labels) pair is first
  // created; empty selects the default exponential seconds-scale buckets.
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       std::vector<double> bounds = {});

  // Weakly consistent snapshot of every registered instrument, safe to call
  // mid-run from any thread (the serving stats/metrics ops read it on live
  // traffic); the atexit dump reuses it.
  std::string snapshot_json() const;
  // Legacy spelling of snapshot_json().
  std::string to_json() const { return snapshot_json(); }
  // Prometheus-style text exposition of the same snapshot: counters and
  // gauges as single samples, histograms as cumulative _bucket{le=...}
  // series plus _sum/_count. Ends with "# EOF" (OpenMetrics-style), which
  // doubles as the framing marker for the serving protocol's multi-line
  // {"op":"metrics"} response.
  std::string to_prometheus() const;
  void write_json_file(const std::string& path) const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> instrument;
  };

  static std::string key_of(std::string_view name, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
  std::string dump_path_;
};

}  // namespace taamr::obs
