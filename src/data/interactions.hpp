// Implicit-feedback dataset model: the user-item feedback matrix S of the
// paper (Definition 1), stored sparsely, with a leave-one-out test split
// and the per-item category labels TAaMR's scenarios are defined over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace taamr::data {

struct ImplicitDataset {
  std::string name;
  std::int64_t num_users = 0;
  std::int64_t num_items = 0;

  // Ground-truth category per item (indices into fashion_taxonomy()).
  std::vector<std::int32_t> item_category;

  // Per-user training interactions (sorted ascending, unique).
  std::vector<std::vector<std::int32_t>> train;

  // Per-user held-out test item, or -1 when the user has none.
  std::vector<std::int32_t> test;

  // Deterministic image identity per item; feeds render_item_image so a
  // dataset regenerated from the same spec has identical product photos.
  std::vector<std::uint64_t> item_image_seed;

  // |S|: train + test interactions.
  std::int64_t num_feedback() const;
  // Training interactions only.
  std::int64_t num_train_feedback() const;

  // Binary search over the user's sorted training items.
  bool user_interacted(std::int64_t user, std::int32_t item) const;

  // All items of a category.
  std::vector<std::int32_t> items_of_category(std::int32_t category) const;

  // Item popularity (training interaction counts per item).
  std::vector<std::int64_t> item_train_counts() const;

  // Structural invariants (sorted/unique/in-range, test not in train,
  // >= min_interactions per user). Throws std::logic_error on violation;
  // used by tests and by generate_synthetic_dataset's self-check.
  void validate(std::int64_t min_interactions = 1) const;
};

struct DatasetStats {
  std::int64_t num_users = 0;
  std::int64_t num_items = 0;
  std::int64_t num_feedback = 0;
  double density = 0.0;
  double mean_interactions_per_user = 0.0;
  std::vector<std::int64_t> items_per_category;
  std::vector<std::int64_t> feedback_per_category;
};

DatasetStats compute_stats(const ImplicitDataset& dataset);

}  // namespace taamr::data
