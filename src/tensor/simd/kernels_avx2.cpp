// AVX2+FMA kernel table. This TU is the only one compiled with
// -mavx2 -mfma (plus -ffp-contract=off so scalar tail code cannot be
// contracted into FMA behind our back; the GEMM microkernel uses explicit
// _mm256_fmadd_ps, which fp-contract does not touch). When the toolchain
// lacks AVX2 the whole file degrades to a nullptr table and dispatch stays
// on the scalar fallback.
#include "tensor/simd/dispatch.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace taamr::simd {
namespace {

// ---- GEMM: 6x16 register-tile microkernel ----------------------------------
//
// Each tile holds a 6-row by 16-column block of C in 12 ymm accumulators;
// the k-loop broadcasts one A element per row and issues two FMAs against a
// streamed 16-wide B slab (one cache line per B row). Row results depend
// only on their own k-order, so any row partition (the parallel panel
// driver, remainder handling below) is bitwise-identical.

inline __m256i tail_mask(std::int64_t rem) {  // rem in [1, 7]
  alignas(32) static const int kMaskSrc[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                               0,  0,  0,  0,  0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskSrc + 8 - rem));
}

template <int MR>
void tile_x16(float* c, const float* a, const float* b, std::int64_t i,
              std::int64_t j, std::int64_t k, std::int64_t n) {
  __m256 acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = _mm256_loadu_ps(c + (i + r) * n + j);
    acc1[r] = _mm256_loadu_ps(c + (i + r) * n + j + 8);
  }
  for (std::int64_t p = 0; p < k; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + p * n + j);
    const __m256 b1 = _mm256_loadu_ps(b + p * n + j + 8);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(a + (i + r) * k + p);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm256_storeu_ps(c + (i + r) * n + j, acc0[r]);
    _mm256_storeu_ps(c + (i + r) * n + j + 8, acc1[r]);
  }
}

template <int MR>
void tile_x8(float* c, const float* a, const float* b, std::int64_t i,
             std::int64_t j, std::int64_t k, std::int64_t n) {
  __m256 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm256_loadu_ps(c + (i + r) * n + j);
  for (std::int64_t p = 0; p < k; ++p) {
    const __m256 bv = _mm256_loadu_ps(b + p * n + j);
    for (int r = 0; r < MR; ++r) {
      acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + (i + r) * k + p), bv,
                               acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) _mm256_storeu_ps(c + (i + r) * n + j, acc[r]);
}

template <int MR>
void tile_tail(float* c, const float* a, const float* b, std::int64_t i,
               std::int64_t j, std::int64_t k, std::int64_t n,
               std::int64_t rem) {
  const __m256i mask = tail_mask(rem);
  __m256 acc[MR];
  for (int r = 0; r < MR; ++r) {
    acc[r] = _mm256_maskload_ps(c + (i + r) * n + j, mask);
  }
  for (std::int64_t p = 0; p < k; ++p) {
    // Masked-out lanes load as 0 and are never stored, so garbage past the
    // row end cannot leak in.
    const __m256 bv = _mm256_maskload_ps(b + p * n + j, mask);
    for (int r = 0; r < MR; ++r) {
      acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + (i + r) * k + p), bv,
                               acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm256_maskstore_ps(c + (i + r) * n + j, mask, acc[r]);
  }
}

template <int MR>
void row_block(float* c, const float* a, const float* b, std::int64_t i,
               std::int64_t k, std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) tile_x16<MR>(c, a, b, i, j, k, n);
  if (j + 8 <= n) {
    tile_x8<MR>(c, a, b, i, j, k, n);
    j += 8;
  }
  if (j < n) tile_tail<MR>(c, a, b, i, j, k, n, n - j);
}

void gemm_panel(float* c, const float* a, const float* b, std::int64_t i_begin,
                std::int64_t i_end, std::int64_t k, std::int64_t n) {
  std::int64_t i = i_begin;
  for (; i + 6 <= i_end; i += 6) row_block<6>(c, a, b, i, k, n);
  switch (i_end - i) {
    case 5: row_block<5>(c, a, b, i, k, n); break;
    case 4: row_block<4>(c, a, b, i, k, n); break;
    case 3: row_block<3>(c, a, b, i, k, n); break;
    case 2: row_block<2>(c, a, b, i, k, n); break;
    case 1: row_block<1>(c, a, b, i, k, n); break;
    default: break;
  }
}

// ---- elementwise ------------------------------------------------------------
// All of these use separate mul/add (never fmadd) so each lane performs
// exactly the scalar table's float arithmetic — bitwise-identical results.

void add(float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

void sub(float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] -= b[i];
}

void mul(float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] *= b[i];
}

void scale(float* a, float s, std::int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), sv));
  }
  for (; i < n; ++i) a[i] *= s;
}

void add_scalar(float* a, float s, std::int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), sv));
  }
  for (; i < n; ++i) a[i] += s;
}

void axpy(float* a, float s, const float* b, std::int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(sv, _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), prod));
  }
  for (; i < n; ++i) a[i] += s * b[i];
}

void clamp(float* a, float lo, float hi, std::int64_t n) {
  const __m256 lov = _mm256_set1_ps(lo);
  const __m256 hiv = _mm256_set1_ps(hi);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    _mm256_storeu_ps(a + i, _mm256_min_ps(_mm256_max_ps(v, lov), hiv));
  }
  for (; i < n; ++i) a[i] = std::clamp(a[i], lo, hi);
}

void sign(float* a, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    const __m256 pos = _mm256_and_ps(_mm256_cmp_ps(v, zero, _CMP_GT_OQ), one);
    const __m256 neg = _mm256_and_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ), one);
    _mm256_storeu_ps(a + i, _mm256_sub_ps(pos, neg));
  }
  for (; i < n; ++i) {
    a[i] = static_cast<float>(a[i] > 0.0f) - static_cast<float>(a[i] < 0.0f);
  }
}

void project_linf(float* c, const float* o, float eps, float lo, float hi,
                  std::int64_t n) {
  const __m256 ev = _mm256_set1_ps(eps);
  const __m256 lov = _mm256_set1_ps(lo);
  const __m256 hiv = _mm256_set1_ps(hi);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 ov = _mm256_loadu_ps(o + i);
    const __m256 l = _mm256_max_ps(_mm256_sub_ps(ov, ev), lov);
    const __m256 h = _mm256_min_ps(_mm256_add_ps(ov, ev), hiv);
    const __m256 v = _mm256_loadu_ps(c + i);
    _mm256_storeu_ps(c + i, _mm256_min_ps(_mm256_max_ps(v, l), h));
  }
  for (; i < n; ++i) {
    const float l = std::max(o[i] - eps, lo);
    const float h = std::min(o[i] + eps, hi);
    c[i] = std::clamp(c[i], l, h);
  }
}

// ---- reductions -------------------------------------------------------------
// Lane spec (see dispatch.hpp): doubles accumulate in 4 lanes, element i
// lands in lane i%4, combined (l0+l1)+(l2+l3); floats use 8 lanes folded
// pairwise. The tails below keep the same lane assignment so the result is
// bitwise-identical to the scalar table for every n.

inline double combine4(__m256d acc) {
  alignas(32) double l[4];
  _mm256_store_pd(l, acc);
  return (l[0] + l[1]) + (l[2] + l[3]);
}

inline double combine4_tail(__m256d acc, const double* tail_contrib) {
  alignas(32) double l[4];
  _mm256_store_pd(l, acc);
  for (int j = 0; j < 4; ++j) l[j] += tail_contrib[j];
  return (l[0] + l[1]) + (l[2] + l[3]);
}

double sum(const float* a, std::int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_cvtps_pd(_mm_loadu_ps(a + i)));
  }
  double tail[4] = {0.0, 0.0, 0.0, 0.0};
  for (; i < n; ++i) tail[i & 3] += static_cast<double>(a[i]);
  return combine4_tail(acc, tail);
}

float sum_f32(const float* a, std::int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) acc = _mm256_add_ps(acc, _mm256_loadu_ps(a + i));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (; i < n; ++i) lanes[i & 7] += a[i];
  float f4[4], f2[2];
  for (int j = 0; j < 4; ++j) f4[j] = lanes[j] + lanes[j + 4];
  for (int j = 0; j < 2; ++j) f2[j] = f4[j] + f4[j + 2];
  return f2[0] + f2[1];
}

double dot(const float* a, const float* b, std::int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d av = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d bv = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    // mul_pd of two float-valued doubles is exact, matching the scalar
    // table's (double)a * (double)b.
    acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
  }
  double tail[4] = {0.0, 0.0, 0.0, 0.0};
  for (; i < n; ++i) {
    tail[i & 3] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return combine4_tail(acc, tail);
}

double squared_distance(const float* a, const float* b, std::int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                    _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double tail[4] = {0.0, 0.0, 0.0, 0.0};
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    tail[i & 3] += d * d;
  }
  return combine4_tail(acc, tail);
}

// max/min/max_abs are order-independent (the result is *the* extremal
// value), so fold order does not matter for finite inputs.

inline float hmax(__m256 acc) {
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(acc),
                        _mm256_extractf128_ps(acc, 1));
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x1));
  return _mm_cvtss_f32(m);
}

inline float hmin(__m256 acc) {
  __m128 m = _mm_min_ps(_mm256_castps256_ps128(acc),
                        _mm256_extractf128_ps(acc, 1));
  m = _mm_min_ps(m, _mm_movehl_ps(m, m));
  m = _mm_min_ss(m, _mm_shuffle_ps(m, m, 0x1));
  return _mm_cvtss_f32(m);
}

const __m256 kAbsMask =
    _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));

float max(const float* a, std::int64_t n) {
  float m = a[0];
  std::int64_t i = 0;
  if (n >= 8) {
    __m256 acc = _mm256_loadu_ps(a);
    for (i = 8; i + 8 <= n; i += 8) {
      acc = _mm256_max_ps(acc, _mm256_loadu_ps(a + i));
    }
    m = hmax(acc);
  }
  for (; i < n; ++i) m = std::max(m, a[i]);
  return m;
}

float min(const float* a, std::int64_t n) {
  float m = a[0];
  std::int64_t i = 0;
  if (n >= 8) {
    __m256 acc = _mm256_loadu_ps(a);
    for (i = 8; i + 8 <= n; i += 8) {
      acc = _mm256_min_ps(acc, _mm256_loadu_ps(a + i));
    }
    m = hmin(acc);
  }
  for (; i < n; ++i) m = std::min(m, a[i]);
  return m;
}

float max_abs(const float* a, std::int64_t n) {
  float m = 0.0f;
  std::int64_t i = 0;
  if (n >= 8) {
    __m256 acc = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      acc = _mm256_max_ps(acc, _mm256_and_ps(_mm256_loadu_ps(a + i), kAbsMask));
    }
    m = hmax(acc);
  }
  for (; i < n; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

float max_abs_diff(const float* a, const float* b, std::int64_t n) {
  float m = 0.0f;
  std::int64_t i = 0;
  if (n >= 8) {
    __m256 acc = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      const __m256 d =
          _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
      acc = _mm256_max_ps(acc, _mm256_and_ps(d, kAbsMask));
    }
    m = hmax(acc);
  }
  for (; i < n; ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

const Kernels kTable = {
    gemm_panel, add,      sub,  mul,     scale, add_scalar,
    axpy,       clamp,    sign, project_linf,
    sum,        sum_f32,  dot,  squared_distance,
    max,        min,      max_abs, max_abs_diff,
};

}  // namespace

namespace detail {
const Kernels* avx2_kernels() { return &kTable; }
}  // namespace detail

}  // namespace taamr::simd

#else  // toolchain without AVX2: dispatch stays on the scalar table

namespace taamr::simd::detail {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace taamr::simd::detail

#endif
