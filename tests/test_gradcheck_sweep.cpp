// Parameterized finite-difference gradient sweeps: every differentiable
// layer is checked across a grid of geometries, in both BN modes. These are
// the tests that guard the correctness of the hand-derived backward passes
// the whole reproduction stands on.
#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/batchnorm2d.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/residual_block.hpp"
#include "test_helpers.hpp"

namespace taamr {
namespace {

using testing::check_input_gradient;
using testing::check_param_gradient;
using testing::fill_uniform;

// ---- Linear across feature-size grid ----------------------------------------

class LinearGrid
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                                 std::int64_t>> {};

TEST_P(LinearGrid, InputAndWeightGradients) {
  const auto [in, out, batch] = GetParam();
  Rng rng(400 + in * 7 + out * 3 + batch);
  nn::Linear layer(in, out);
  fill_uniform(layer.weight().value, rng, -0.7f, 0.7f);
  fill_uniform(layer.bias().value, rng);
  Tensor x({batch, in});
  fill_uniform(x, rng);
  check_input_gradient(layer, x, rng);
  check_param_gradient(layer, x, layer.weight(), rng);
}

INSTANTIATE_TEST_SUITE_P(Grid, LinearGrid,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(3, 5, 2),
                                           std::make_tuple(8, 2, 4),
                                           std::make_tuple(2, 8, 3)));

// ---- Conv2d across geometry grid ---------------------------------------------

class ConvGrid
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                     std::int64_t>> {};

TEST_P(ConvGrid, InputAndWeightGradients) {
  const auto [in_c, out_c, kernel, stride, size] = GetParam();
  Rng rng(500 + in_c * 11 + out_c * 5 + kernel * 3 + stride);
  nn::Conv2d layer(in_c, out_c, kernel, stride, kernel / 2, /*bias=*/true);
  fill_uniform(layer.weight().value, rng, -0.4f, 0.4f);
  Tensor x({1, in_c, size, size});
  fill_uniform(x, rng);
  check_input_gradient(layer, x, rng);
  check_param_gradient(layer, x, layer.weight(), rng);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvGrid,
    ::testing::Values(std::make_tuple(1, 2, 3, 1, 5),   // the MiniResNet stem shape
                      std::make_tuple(2, 2, 3, 2, 6),   // strided stage entry
                      std::make_tuple(3, 1, 1, 1, 4),   // 1x1 projection
                      std::make_tuple(2, 3, 1, 2, 4),   // strided projection
                      std::make_tuple(1, 1, 5, 1, 7))); // wide receptive field

// ---- BatchNorm in both modes over channel counts -----------------------------

class BnGrid : public ::testing::TestWithParam<std::tuple<std::int64_t, bool>> {};

TEST_P(BnGrid, InputGradient) {
  const auto [channels, train_mode] = GetParam();
  Rng rng(600 + channels * 13 + (train_mode ? 1 : 0));
  nn::BatchNorm2d bn(channels);
  fill_uniform(bn.gamma().value, rng, 0.5f, 1.5f);
  fill_uniform(bn.beta().value, rng);
  if (!train_mode) {
    fill_uniform(bn.running_mean().value, rng, -0.3f, 0.3f);
    fill_uniform(bn.running_var().value, rng, 0.5f, 1.5f);
  }
  Tensor x({3, channels, 2, 3});
  fill_uniform(x, rng, -2.0f, 2.0f);
  check_input_gradient(bn, x, rng, train_mode, 1e-3f, 6e-2f);
}

INSTANTIATE_TEST_SUITE_P(Grid, BnGrid,
                         ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 4),
                                            ::testing::Bool()));

// ---- ResidualBlock across the MiniResNet's block shapes ----------------------

class ResidualGrid
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                                 std::int64_t>> {};

TEST_P(ResidualGrid, InputGradientEvalMode) {
  const auto [in_c, out_c, stride] = GetParam();
  Rng rng(700 + in_c * 17 + out_c * 7 + stride);
  nn::ResidualBlock block(in_c, out_c, stride);
  for (nn::Param* p : block.params()) {
    if (p->name == "weight") fill_uniform(p->value, rng, -0.3f, 0.3f);
  }
  Tensor x({1, in_c, 4, 4});
  fill_uniform(x, rng);
  check_input_gradient(block, x, rng, /*train_mode=*/false, 1e-3f, 4e-2f);
}

INSTANTIATE_TEST_SUITE_P(Grid, ResidualGrid,
                         ::testing::Values(std::make_tuple(2, 2, 1),   // identity block
                                           std::make_tuple(2, 4, 2),   // downsampling
                                           std::make_tuple(3, 3, 2),   // stride-only proj
                                           std::make_tuple(4, 2, 1))); // channel-only proj

// ---- Pointwise layers over input ranges --------------------------------------

class PointwiseGrid : public ::testing::TestWithParam<int> {};

TEST_P(PointwiseGrid, SigmoidAndLeakyGradients) {
  Rng rng(800 + static_cast<std::uint64_t>(GetParam()));
  Tensor x({2, 6});
  // Sweep different magnitude regimes (tiny to saturating).
  const float scale = 0.25f * static_cast<float>(1 << GetParam());
  fill_uniform(x, rng, -scale, scale);
  nn::Sigmoid sigmoid;
  check_input_gradient(sigmoid, x, rng);
  // Keep LeakyReLU inputs away from its kink for a clean finite difference.
  for (float& v : x.storage()) {
    if (std::fabs(v) < 0.05f) v = 0.1f;
  }
  nn::LeakyReLU leaky(0.1f);
  check_input_gradient(leaky, x, rng);
}

INSTANTIATE_TEST_SUITE_P(Ranges, PointwiseGrid, ::testing::Range(0, 4));

}  // namespace
}  // namespace taamr
