# Shard-scaling gate, run via
#   cmake -DBENCH_BIN=<serve_load> -DWORK_DIR=<dir> -P ServeShardGate.cmake
# Optional: -DMIN_SPEEDUP_X10=<n> (default 18, i.e. 1.8x).
#
# Runs serve_load with a 1-vs-4 shard sweep in a deliberately miss-heavy,
# coalescing-free configuration (tiny cache, zero batch window, one worker
# per shard) so each leg's throughput tracks how many cores the shard
# layout can actually use. Asserts
#   serve_qps{shards=4} >= (MIN_SPEEDUP_X10 / 10) * serve_qps{shards=1}
# with one retry (single-run bench noise must not fail CI). Hosts with
# fewer than 4 hardware threads pass trivially — the artifact's
# serve_hw_concurrency metric records what the run had, and pinning a
# parallelism speedup on a 1- or 2-core box would only measure the
# scheduler.
cmake_minimum_required(VERSION 3.16)

foreach(var BENCH_BIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "ServeShardGate: -D${var}=... is required")
  endif()
endforeach()
if(NOT DEFINED MIN_SPEEDUP_X10)
  set(MIN_SPEEDUP_X10 18)
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Decimal string -> integer thousandths, for 64-bit integer ratio compares.
function(to_milli value out)
  if(NOT value MATCHES "^([0-9]+)(\\.([0-9]*))?$")
    message(FATAL_ERROR "ServeShardGate: cannot parse '${value}' as a decimal")
  endif()
  set(whole ${CMAKE_MATCH_1})
  set(frac "${CMAKE_MATCH_3}000")
  string(SUBSTRING "${frac}" 0 3 frac)
  math(EXPR milli "${whole} * 1000 + 1${frac} - 1000")
  set(${out} ${milli} PARENT_SCOPE)
endfunction()

# One serve_load run with the 1,4 sweep; extracts hw concurrency and the
# per-shard-count qps values into <prefix>_hw / <prefix>_q1 / <prefix>_q4.
function(run_sweep tag prefix)
  set(dir "${WORK_DIR}/run_${tag}")
  file(MAKE_DIRECTORY "${dir}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            "TAAMR_BENCH_DIR=${dir}"
            "TAAMR_SERVE_USERS=4000"
            "TAAMR_SERVE_ITEMS=2048"
            "TAAMR_SERVE_CLIENTS=8"
            "TAAMR_SERVE_REQUESTS=150"
            "TAAMR_SERVE_SHARD_SWEEP=1,4"
            "TAAMR_SERVE_WORKERS=1"
            "TAAMR_SERVE_CACHE_CAP=64"
            "TAAMR_SERVE_BATCH_WINDOW_US=0"
            ${BENCH_BIN}
    WORKING_DIRECTORY "${dir}"
    RESULT_VARIABLE rc
    OUTPUT_FILE "${dir}/stdout.log"
    ERROR_FILE "${dir}/stderr.log"
    TIMEOUT 600
  )
  if(NOT rc EQUAL 0)
    file(READ "${dir}/stderr.log" err)
    message(FATAL_ERROR "ServeShardGate: serve_load (${tag}) failed, rc=${rc}:\n${err}")
  endif()
  file(READ "${dir}/BENCH_serve_load.json" text)
  if(NOT text MATCHES "\"name\":\"serve_hw_concurrency\",\"labels\":{},\"value\":([0-9.]+)")
    message(FATAL_ERROR "ServeShardGate: no serve_hw_concurrency in run_${tag} artifact")
  endif()
  set(${prefix}_hw ${CMAKE_MATCH_1} PARENT_SCOPE)
  if(NOT text MATCHES "\"name\":\"serve_qps\",\"labels\":{\"shards\":\"1\"},\"value\":([0-9.]+)")
    message(FATAL_ERROR "ServeShardGate: no serve_qps{shards=1} in run_${tag} artifact")
  endif()
  set(${prefix}_q1 ${CMAKE_MATCH_1} PARENT_SCOPE)
  if(NOT text MATCHES "\"name\":\"serve_qps\",\"labels\":{\"shards\":\"4\"},\"value\":([0-9.]+)")
    message(FATAL_ERROR "ServeShardGate: no serve_qps{shards=4} in run_${tag} artifact")
  endif()
  set(${prefix}_q4 ${CMAKE_MATCH_1} PARENT_SCOPE)
endfunction()

# TRUE in ${out} when q4 >= q1 * MIN_SPEEDUP_X10 / 10.
function(scales_enough q1 q4 out)
  to_milli(${q1} q1_m)
  to_milli(${q4} q4_m)
  math(EXPR lhs "${q4_m} * 10")
  math(EXPR rhs "${q1_m} * ${MIN_SPEEDUP_X10}")
  if(lhs LESS rhs)
    set(${out} FALSE PARENT_SCOPE)
  else()
    set(${out} TRUE PARENT_SCOPE)
  endif()
endfunction()

run_sweep(1 first)
message(STATUS "serve_load sweep: hw=${first_hw} qps shards=1: ${first_q1}, shards=4: ${first_q4}")

# The sweep itself (routing invariants, golden-verified mid-load swaps,
# clean drains) already ran and passed above; the scaling assertion needs
# at least 4 hardware threads to mean anything.
to_milli(${first_hw} hw_m)
if(hw_m LESS 4000)
  message(STATUS "ServeShardGate: PASS (host has ${first_hw} hardware threads; 4-shard speedup not pinned)")
  return()
endif()

scales_enough(${first_q1} ${first_q4} ok)
if(NOT ok)
  message(STATUS "shard scaling below floor on first run; retrying once")
  run_sweep(2 second)
  message(STATUS "serve_load sweep (retry): qps shards=1: ${second_q1}, shards=4: ${second_q4}")
  scales_enough(${second_q1} ${second_q4} ok)
endif()
if(NOT ok)
  message(FATAL_ERROR "ServeShardGate: 4-shard qps did not reach ${MIN_SPEEDUP_X10}/10 of 1-shard qps")
endif()
message(STATUS "ServeShardGate: PASS (4-shard speedup floor ${MIN_SPEEDUP_X10}/10 met)")
