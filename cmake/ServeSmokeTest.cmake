# ctest script: drive taamr_serve end-to-end over its stdin JSONL protocol
# and assert on the responses — model listing, cold/warm cache behaviour, a
# live image swap advancing the feature epoch, error reporting, and stats.
#
# Invoked as:
#   cmake -DSERVE_BIN=<path> -DWORK_DIR=<dir> -P ServeSmokeTest.cmake

foreach(var SERVE_BIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "ServeSmokeTest: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests_file "${WORK_DIR}/requests.jsonl")
file(WRITE "${requests_file}" "\
{\"op\":\"models\"}
{\"op\":\"recommend\",\"model\":\"vbpr\",\"user\":0,\"n\":5}
{\"op\":\"recommend\",\"model\":\"vbpr\",\"user\":0,\"n\":5}
{\"op\":\"recommend\",\"model\":\"bpr_mf\",\"user\":1,\"n\":5}
{\"op\":\"update_image\",\"item\":0,\"seed\":123}
{\"op\":\"recommend\",\"model\":\"vbpr\",\"user\":0,\"n\":5}
{\"op\":\"recommend\",\"model\":\"nope\",\"user\":0}
{\"op\":\"not_an_op\"}
{\"op\":\"stats\"}
{\"op\":\"shutdown\"}
")

execute_process(
  COMMAND "${SERVE_BIN}" --seed 42
  INPUT_FILE "${requests_file}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE serve_rc
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err
  TIMEOUT 600
)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "taamr_serve failed (rc=${serve_rc}):\n${serve_out}\n${serve_err}")
endif()

# Every exchange the driver must have answered correctly.
foreach(needle
    "taamr_serve: ready"          # pipeline prepared, models registered
    "\"vbpr\""                    # models response lists both entries
    "\"bpr_mf\""
    "\"cached\":false"            # first recommend is a cold miss
    "\"cached\":true"             # identical repeat is served from cache
    "\"feature_epoch\":1"         # update_image advanced the epoch and the
                                  # next recommend reflects it
    "unknown model"               # descriptive error, not a crash
    "\"ok\":false"
    "\"requests\":"               # stats carry the counters
    )
  string(FIND "${serve_out}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "serve output is missing '${needle}':\n${serve_out}")
  endif()
endforeach()

# One response per request: 10 requests in, 10 "ok"-tagged JSON lines out
# (every formatter leads with the ok field; shutdown acks before exiting).
string(REGEX MATCHALL "\"ok\":(true|false)" response_lines "${serve_out}")
list(LENGTH response_lines response_count)
if(NOT response_count EQUAL 10)
  message(FATAL_ERROR "expected 10 JSONL responses, saw ${response_count}:\n${serve_out}")
endif()

message(STATUS "taamr_serve smoke: ${response_count} responses validated")
