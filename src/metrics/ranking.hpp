// Standard top-N ranking metrics on the leave-one-out split — used to check
// that the recommenders actually learned something before attacking them.
#pragma once

#include <cstdint>
#include <vector>

#include "data/interactions.hpp"

namespace taamr::metrics {

// Fraction of users whose held-out test item appears in their top-N list.
double hit_ratio_at_n(const std::vector<std::vector<std::int32_t>>& lists,
                      const data::ImplicitDataset& dataset);

// Mean NDCG@N with the single test item as the only relevant one
// (DCG = 1/log2(rank+1), IDCG = 1).
double ndcg_at_n(const std::vector<std::vector<std::int32_t>>& lists,
                 const data::ImplicitDataset& dataset);

// Precision@N with the single test item as the only relevant one:
// hits / (evaluated users * N). N is taken from the longest list.
double precision_at_n(const std::vector<std::vector<std::int32_t>>& lists,
                      const data::ImplicitDataset& dataset);

// Recall@N: with one relevant item per user this equals HR@N; provided for
// API completeness (some downstream scripts expect the name).
double recall_at_n(const std::vector<std::vector<std::int32_t>>& lists,
                   const data::ImplicitDataset& dataset);

}  // namespace taamr::metrics
