// Collapsed-stack ("folded") profile documents: strict parsing, canonical
// emission, shard merging, per-frame self/total rollups, and baseline diffs
// with a regression verdict. Shared by the in-process profiler, the
// taamr_prof CLI and taamr_report --profile; unit-tested directly (mirrors
// the trace_stats split), so the tools stay thin shells.
//
// Format: one stack per line, `frame;frame;frame <weight>`, root frame
// first, weight = sample count (CPU) or estimated bytes (alloc). Frames may
// contain spaces (demangled C++ names); the weight is the text after the
// LAST space — the same rule flamegraph.pl and speedscope apply. Lines
// starting with '#' are comments (the serving profile op terminates its
// response with "# EOF").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace taamr::obs {

struct FoldedProfile {
  // stack ("root;mid;leaf") -> accumulated weight.
  std::map<std::string, std::uint64_t> stacks;

  std::uint64_t total_weight() const;
  bool empty() const { return stacks.empty(); }
  void add(const std::string& stack, std::uint64_t weight);
};

// Parses a folded document. Rejects — with a std::runtime_error naming the
// line — a weight that is missing, non-numeric or overflowing, an empty
// stack, and empty frames (";;", leading or trailing ';'). Blank and '#'
// comment lines are skipped. Wholly empty documents (no stack lines) are
// rejected too: that is the classic symptom of a truncated or never-written
// profile, and silently summarizing it would report "no hotspots".
FoldedProfile parse_folded(const std::string& text);

// Canonical emission: one line per stack, sorted by stack string, no
// comments. parse_folded(to_folded(p)) == p.
std::string to_folded(const FoldedProfile& p);

// Adds every stack of `from` into `into` (shard merge).
void merge_folded(FoldedProfile& into, const FoldedProfile& from);

// Per-frame rollup. self = weight of stacks whose LEAF is the frame; total
// = weight of every stack containing the frame (counted once per stack, so
// recursion does not double-book).
struct FrameStat {
  std::string frame;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

// Ranked by self weight descending (ties: frame name ascending); at most
// top_k entries (0 = all).
std::vector<FrameStat> top_frames(const FoldedProfile& p, std::size_t top_k);

// Baseline comparison: a frame regresses when its share of total self
// weight grew by more than `threshold` (a fraction: 0.05 = five percentage
// points) against the baseline. Shares — not absolute weights — so a longer
// run with proportionally identical hotspots diffs clean. Ranked by share
// growth descending.
struct ProfileDelta {
  std::string frame;
  double base_share = 0.0;  // fraction of baseline self weight
  double cur_share = 0.0;   // fraction of current self weight
};

std::vector<ProfileDelta> diff_folded(const FoldedProfile& baseline,
                                      const FoldedProfile& current,
                                      double threshold);

// Buckets one stack into the cost-accounting kernel families by frame
// substrings (gemm/matmul -> "gemm", im2col/conv -> "im2col", ...); "other"
// when nothing matches. The alloc profiler uses this so folded heap
// profiles aggregate by the tensor-op family that allocated.
std::string kernel_family_for_stack(const std::string& stack);

}  // namespace taamr::obs
