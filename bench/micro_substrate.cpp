// google-benchmark microbenchmarks of the substrates: GEMM, conv lowering,
// CNN forward/backward, attack steps, recommender epochs and ranking.
// These document where the wall-clock of the table benches goes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "attack/attack.hpp"
#include "bench_common.hpp"
#include "data/amazon_synth.hpp"
#include "data/dataset.hpp"
#include "nn/classifier.hpp"
#include "recsys/ranker.hpp"
#include "recsys/vbpr.hpp"
#include "tensor/conv_lowering.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd/dispatch.hpp"

namespace {

using namespace taamr;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  for (float& v : a.storage()) v = rng.uniform_f();
  for (float& v : b.storage()) v = rng.uniform_f();
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  conv::ConvGeometry g;
  g.in_channels = 12;
  g.in_h = g.in_w = 32;
  g.kernel = 3;
  g.stride = 1;
  g.padding = 1;
  Rng rng(2);
  Tensor img({12, 32, 32});
  for (float& v : img.storage()) v = rng.uniform_f();
  for (auto _ : state) {
    Tensor cols = conv::im2col(img, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col);

nn::Classifier make_bench_classifier() {
  nn::MiniResNetConfig cfg;
  cfg.image_size = 32;
  cfg.base_width = 12;
  cfg.blocks_per_stage = 1;
  cfg.num_classes = 16;
  Rng rng(3);
  return nn::Classifier(cfg, rng);
}

void BM_CnnForward(benchmark::State& state) {
  nn::Classifier c = make_bench_classifier();
  const std::int64_t batch = state.range(0);
  Rng rng(4);
  Tensor x({batch, 3, 32, 32});
  for (float& v : x.storage()) v = rng.uniform_f();
  for (auto _ : state) {
    Tensor logits = c.logits(x);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CnnForward)->Arg(1)->Arg(16)->Arg(64);

void BM_CnnInputGradient(benchmark::State& state) {
  nn::Classifier c = make_bench_classifier();
  const std::int64_t batch = state.range(0);
  Rng rng(5);
  Tensor x({batch, 3, 32, 32});
  for (float& v : x.storage()) v = rng.uniform_f();
  const std::vector<std::int64_t> labels(static_cast<std::size_t>(batch), 1);
  for (auto _ : state) {
    Tensor g = c.loss_input_gradient(x, labels);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CnnInputGradient)->Arg(1)->Arg(16);

void BM_FgsmPerImage(benchmark::State& state) {
  nn::Classifier c = make_bench_classifier();
  Rng rng(6);
  Tensor x({8, 3, 32, 32});
  for (float& v : x.storage()) v = rng.uniform_f();
  const std::vector<std::int64_t> targets(8, 2);
  attack::AttackConfig cfg;
  auto fgsm = attack::make("fgsm", cfg);
  for (auto _ : state) {
    Tensor adv = fgsm->perturb(c, x, targets, rng);
    benchmark::DoNotOptimize(adv.data());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_FgsmPerImage);

void BM_Pgd10PerImage(benchmark::State& state) {
  nn::Classifier c = make_bench_classifier();
  Rng rng(7);
  Tensor x({8, 3, 32, 32});
  for (float& v : x.storage()) v = rng.uniform_f();
  const std::vector<std::int64_t> targets(8, 2);
  attack::AttackConfig cfg;
  auto pgd = attack::make("pgd", cfg);
  for (auto _ : state) {
    Tensor adv = pgd->perturb(c, x, targets, rng);
    benchmark::DoNotOptimize(adv.data());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Pgd10PerImage);

struct RecsysFixture {
  data::ImplicitDataset dataset;
  Tensor features;
  std::unique_ptr<recsys::Vbpr> model;

  RecsysFixture() {
    dataset = data::generate_synthetic_dataset(data::amazon_men_spec(0.01));
    Rng rng(8);
    features = Tensor({dataset.num_items, 48});
    for (float& v : features.storage()) v = rng.gaussian_f(0.0f, 1.0f);
    recsys::VbprConfig cfg;
    model = std::make_unique<recsys::Vbpr>(dataset, features, cfg, rng);
    model->set_item_features(features);
  }
};

void BM_VbprTrainEpoch(benchmark::State& state) {
  RecsysFixture fx;
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model->train_epoch(fx.dataset, rng));
  }
  fx.model->set_item_features(fx.features);
  state.SetItemsProcessed(state.iterations() * fx.dataset.num_train_feedback());
}
BENCHMARK(BM_VbprTrainEpoch);

void BM_TopNRanking(benchmark::State& state) {
  RecsysFixture fx;
  for (auto _ : state) {
    auto lists = recsys::top_n_lists(*fx.model, fx.dataset, 100);
    benchmark::DoNotOptimize(lists.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.dataset.num_users);
}
BENCHMARK(BM_TopNRanking);

void BM_RenderItemImage(benchmark::State& state) {
  const auto& style = data::fashion_taxonomy()[0].style;
  data::ImageGenConfig cfg;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Tensor img = data::render_item_image(style, seed++, cfg);
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_RenderItemImage);

// GEMM thread-scaling probe: times ops::gemm_nn_blocked against explicit
// 1- and 4-worker pools and books single- vs multi-thread GFLOP/s (and the
// speedup ratio) into the BENCH_micro_substrate.json artifact, which is
// what the regression gate tracks across commits. Returns false if the
// pooled result is not bitwise identical to the serial one.
bool report_gemm_scaling(taamr::bench::Reporter& reporter) {
  const std::int64_t n = 256;
  const double flops_per_iter = 2.0 * static_cast<double>(n) * n * n;
  Rng rng(10);
  Tensor a({n, n}), b({n, n});
  for (float& v : a.storage()) v = rng.uniform_f();
  for (float& v : b.storage()) v = rng.uniform_f();
  Tensor c_serial({n, n}), c_pooled({n, n});

  const int iters = 6;
  ThreadPool pool1(1), pool4(4);
  const auto time_gflops = [&](Tensor& c, ThreadPool* pool) {
    Stopwatch timer;
    for (int it = 0; it < iters; ++it) {
      std::fill(c.storage().begin(), c.storage().end(), 0.0f);
      ops::gemm_nn_blocked(c.data(), a.data(), b.data(), n, n, n, pool);
    }
    return iters * flops_per_iter / timer.seconds() / 1e9;
  };
  const double g1 = time_gflops(c_serial, &pool1);
  const double g4 = time_gflops(c_pooled, &pool4);
  reporter.add_metric("gemm_gflops", {{"threads", "1"}}, g1);
  reporter.add_metric("gemm_gflops", {{"threads", "4"}}, g4);
  reporter.add_metric("gemm_speedup_4_over_1", {}, g4 / g1);

  // Re-run serially (nullptr pool) and demand bit-identity with the pooled
  // run — the kernel's panel decomposition must not change the math.
  std::fill(c_serial.storage().begin(), c_serial.storage().end(), 0.0f);
  ops::gemm_nn_blocked(c_serial.data(), a.data(), b.data(), n, n, n, nullptr);
  return std::memcmp(c_serial.data(), c_pooled.data(),
                     static_cast<std::size_t>(n * n) * sizeof(float)) == 0;
}

// SIMD substrate probe: times the scalar and AVX2 GEMM panel kernels
// directly (single thread, whole matrix as one panel) and books per-variant
// GFLOP/s plus the gemm_simd_speedup ratio into the artifact; the regression
// gate pins the speedup. When the host (or build) lacks AVX2+FMA the probe
// books speedup = 1 and skips the comparison. Also enforces the documented
// accuracy contract: AVX2 must match scalar elementwise within epsilon.
bool report_gemm_simd(taamr::bench::Reporter& reporter) {
  const std::int64_t n = 256;
  const double flops_per_iter = 2.0 * static_cast<double>(n) * n * n;
  Rng rng(11);
  Tensor a({n, n}), b({n, n});
  for (float& v : a.storage()) v = rng.uniform_f();
  for (float& v : b.storage()) v = rng.uniform_f();

  const int iters = 6;
  const auto time_gflops = [&](const simd::Kernels& kern, Tensor& c) {
    Stopwatch timer;
    for (int it = 0; it < iters; ++it) {
      std::fill(c.storage().begin(), c.storage().end(), 0.0f);
      kern.gemm_panel(c.data(), a.data(), b.data(), 0, n, n, n);
    }
    return iters * flops_per_iter / timer.seconds() / 1e9;
  };

  Tensor c_scalar({n, n});
  const simd::Kernels* scalar = simd::kernels_for(simd::Variant::kScalar);
  const double g_scalar = time_gflops(*scalar, c_scalar);
  reporter.add_metric("gemm_gflops",
                      {{"threads", "1"}, {"simd_variant", "scalar"}}, g_scalar);

  const simd::Kernels* avx2 = simd::kernels_for(simd::Variant::kAvx2);
  if (avx2 == nullptr || !simd::avx2_supported()) {
    std::fprintf(stderr, "gemm simd probe: AVX2 unavailable, skipping\n");
    reporter.add_metric("gemm_simd_speedup", {}, 1.0);
    return true;
  }
  Tensor c_avx2({n, n});
  const double g_avx2 = time_gflops(*avx2, c_avx2);
  reporter.add_metric("gemm_gflops",
                      {{"threads", "1"}, {"simd_variant", "avx2"}}, g_avx2);
  reporter.add_metric("gemm_simd_speedup", {}, g_avx2 / g_scalar);

  // Accuracy contract: different accumulation order, so epsilon not
  // bit-identity — k = 256 dot products of uniform [0,1) values stay well
  // inside 1e-3 absolute.
  for (std::int64_t i = 0; i < n * n; ++i) {
    if (std::abs(c_scalar[i] - c_avx2[i]) > 1e-3f) {
      std::fprintf(stderr, "gemm simd probe: |scalar - avx2| = %g at %lld\n",
                   static_cast<double>(std::abs(c_scalar[i] - c_avx2[i])),
                   static_cast<long long>(i));
      return false;
    }
  }
  return true;
}

}  // namespace

// Expanded BENCHMARK_MAIN() so the run also leaves a BENCH_micro_substrate.json
// artifact (wall time + kernel FLOP/byte totals across all microbenchmarks).
int main(int argc, char** argv) {
  taamr::bench::Reporter reporter("micro_substrate");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!report_gemm_scaling(reporter)) {
    std::fprintf(stderr, "gemm scaling probe: pooled result != serial result\n");
    return 1;
  }
  if (!report_gemm_simd(reporter)) {
    std::fprintf(stderr, "gemm simd probe: scalar/avx2 parity failed\n");
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
