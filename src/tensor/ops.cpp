#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/cost.hpp"
#include "tensor/simd/dispatch.hpp"
#include "util/thread_pool.hpp"

namespace taamr::ops {

namespace {
// Cost-accounting shorthands (see tensor/cost.hpp). Nominal counts: one
// FLOP per output element for unary/binary maps, 2 per multiply-add.
inline void book_elementwise(std::int64_t n, double flops_per_elem,
                             double bytes_per_elem) {
  cost::add(cost::Kernel::kElementwise, flops_per_elem * static_cast<double>(n),
            bytes_per_elem * static_cast<double>(n));
}
inline void book_reduction(std::int64_t n, double flops_per_elem,
                           double bytes_per_elem) {
  cost::add(cost::Kernel::kReduction, flops_per_elem * static_cast<double>(n),
            bytes_per_elem * static_cast<double>(n));
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  sub_inplace(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  book_elementwise(a.numel(), 1.0, 12.0);
  Tensor out = a;
  simd::active().mul(out.data(), b.data(), out.numel());
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out, s);
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  book_elementwise(a.numel(), 1.0, 8.0);
  Tensor out = a;
  simd::active().add_scalar(out.data(), s, out.numel());
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  book_elementwise(a.numel(), 1.0, 12.0);
  simd::active().add(a.data(), b.data(), a.numel());
}

void sub_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub_inplace");
  book_elementwise(a.numel(), 1.0, 12.0);
  simd::active().sub(a.data(), b.data(), a.numel());
}

void scale_inplace(Tensor& a, float s) {
  book_elementwise(a.numel(), 1.0, 8.0);
  simd::active().scale(a.data(), s, a.numel());
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  check_same_shape(a, b, "axpy_inplace");
  book_elementwise(a.numel(), 2.0, 12.0);
  simd::active().axpy(a.data(), s, b.data(), a.numel());
}

Tensor apply(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out = a;
  apply_inplace(out, f);
  return out;
}

void apply_inplace(Tensor& a, const std::function<float(float)>& f) {
  book_elementwise(a.numel(), 1.0, 8.0);
  for (float& v : a.storage()) v = f(v);
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  Tensor out = a;
  clamp_inplace(out, lo, hi);
  return out;
}

void clamp_inplace(Tensor& a, float lo, float hi) {
  if (lo > hi) throw std::invalid_argument("clamp: lo > hi");
  book_elementwise(a.numel(), 2.0, 8.0);
  simd::active().clamp(a.data(), lo, hi, a.numel());
}

Tensor sign(const Tensor& a) {
  book_elementwise(a.numel(), 2.0, 8.0);
  Tensor out = a;
  simd::active().sign(out.data(), out.numel());
  return out;
}

namespace {

void require_matrix(const Tensor& t, const char* name) {
  if (t.ndim() != 2) {
    throw std::invalid_argument(std::string("matmul: ") + name + " must be 2-d, got " +
                                shape_to_string(t.shape()));
  }
}

// Row-panel width handed to each parallel task; matches the scalar panel
// kernel's internal i-block so a panel's per-row loop order is exactly the
// serial kernel's (bitwise-identical outputs at any pool size — the AVX2
// panel kernel accumulates each row independently, so it holds there too).
constexpr std::int64_t kGemmBlock = 64;
// Below this nominal FLOP count a launch stays serial: chunk bookkeeping
// and the enqueue round-trip would outweigh the multiply-adds.
constexpr double kGemmParallelMinFlops = 1.5e6;

Tensor transposed(const Tensor& t) {
  const std::int64_t r = t.dim(0), c = t.dim(1);
  Tensor out({c, r});
  for (std::int64_t i = 0; i < r; ++i) {
    for (std::int64_t j = 0; j < c; ++j) out.at(j, i) = t.at(i, j);
  }
  return out;
}

}  // namespace

void gemm_nn_blocked(float* c, const float* a, const float* b, std::int64_t m,
                     std::int64_t k, std::int64_t n, ThreadPool* pool) {
  const auto& kern = simd::active();
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  const std::int64_t num_panels = (m + kGemmBlock - 1) / kGemmBlock;
  if (pool == nullptr || pool->size() <= 1 || num_panels <= 1 ||
      flops < kGemmParallelMinFlops) {
    kern.gemm_panel(c, a, b, 0, m, k, n);
    return;
  }
  pool->parallel_for(0, static_cast<std::size_t>(num_panels), [&](std::size_t p) {
    const std::int64_t i0 = static_cast<std::int64_t>(p) * kGemmBlock;
    kern.gemm_panel(c, a, b, i0, std::min(m, i0 + kGemmBlock), k, n);
  });
}

void matmul_accumulate(Tensor& c, const Tensor& a, const Tensor& b, bool trans_a,
                       bool trans_b) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  require_matrix(c, "C");
  // Normalize to the NN case. Transposing the (smaller) operand up front is
  // cheaper and simpler than four kernel variants at our sizes.
  const Tensor& an = trans_a ? transposed(a) : a;
  const Tensor& bn = trans_b ? transposed(b) : b;
  const std::int64_t m = an.dim(0), k = an.dim(1), k2 = bn.dim(0), n = bn.dim(1);
  if (k != k2) {
    throw std::invalid_argument("matmul: inner dimensions differ: " +
                                shape_to_string(an.shape()) + " x " +
                                shape_to_string(bn.shape()));
  }
  if (c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("matmul_accumulate: C has shape " +
                                shape_to_string(c.shape()) + ", expected [" +
                                std::to_string(m) + ", " + std::to_string(n) + "]");
  }
  cost::add(cost::Kernel::kGemm,
            2.0 * static_cast<double>(m) * static_cast<double>(k) *
                static_cast<double>(n),
            4.0 * (static_cast<double>(m) * static_cast<double>(k) +
                   static_cast<double>(k) * static_cast<double>(n) +
                   2.0 * static_cast<double>(m) * static_cast<double>(n)));
  gemm_nn_blocked(c.data(), an.data(), bn.data(), m, k, n, &ThreadPool::global());
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  matmul_accumulate(c, a, b, trans_a, trans_b);
  return c;
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  require_matrix(a, "A");
  if (x.ndim() != 1 || x.dim(0) != a.dim(1)) {
    throw std::invalid_argument("matvec: incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(x.shape()));
  }
  const std::int64_t m = a.dim(0), n = a.dim(1);
  cost::add(cost::Kernel::kGemm,
            2.0 * static_cast<double>(m) * static_cast<double>(n),
            4.0 * (static_cast<double>(m) * static_cast<double>(n) +
                   static_cast<double>(n) + static_cast<double>(m)));
  Tensor y({m});
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = a.data() + i * n;
    float acc = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

float sum(const Tensor& a) {
  book_reduction(a.numel(), 1.0, 4.0);
  // Accumulates in double (these sums feed loss reporting) under the fixed
  // lane spec of tensor/simd/dispatch.hpp, so every variant agrees bitwise.
  return static_cast<float>(simd::active().sum(a.data(), a.numel()));
}

float mean(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("mean: empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  book_reduction(a.numel(), 2.0, 4.0);
  return simd::active().max_abs(a.data(), a.numel());
}

float min(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("min: empty tensor");
  book_reduction(a.numel(), 1.0, 4.0);
  return simd::active().min(a.data(), a.numel());
}

float max(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("max: empty tensor");
  book_reduction(a.numel(), 1.0, 4.0);
  return simd::active().max(a.data(), a.numel());
}

float dot(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "dot");
  book_reduction(a.numel(), 2.0, 8.0);
  return static_cast<float>(simd::active().dot(a.data(), b.data(), a.numel()));
}

float l2_norm(const Tensor& a) { return std::sqrt(std::max(0.0f, dot(a, a))); }

float squared_distance(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "squared_distance");
  book_reduction(a.numel(), 3.0, 8.0);
  return static_cast<float>(
      simd::active().squared_distance(a.data(), b.data(), a.numel()));
}

float linf_distance(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "linf_distance");
  book_reduction(a.numel(), 3.0, 8.0);
  return simd::active().max_abs_diff(a.data(), b.data(), a.numel());
}

std::int64_t argmax(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("argmax: empty tensor");
  book_reduction(a.numel(), 1.0, 4.0);
  std::int64_t best = 0;
  float best_v = a[0];
  for (std::int64_t i = 1; i < a.numel(); ++i) {
    if (a[i] > best_v) {
      best_v = a[i];
      best = i;
    }
  }
  return best;
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  if (a.ndim() != 2) throw std::invalid_argument("argmax_rows: expected matrix");
  book_reduction(a.numel(), 1.0, 4.0);
  const std::int64_t rows = a.dim(0), cols = a.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* row = a.data() + i * cols;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < cols; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.ndim() != 2) throw std::invalid_argument("softmax_rows: expected matrix");
  book_reduction(logits.numel(), 4.0, 8.0);
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  const auto& kern = simd::active();
  Tensor out = logits;
  for (std::int64_t i = 0; i < rows; ++i) {
    float* row = out.data() + i * cols;
    const float mx = kern.max(row, cols);
    double denom = 0.0;
    for (std::int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    kern.scale(row, inv, cols);
  }
  return out;
}

}  // namespace taamr::ops
