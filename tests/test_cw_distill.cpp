// Tests of the Carlini-Wagner attack and defensive distillation (the
// paper's citation [8] and its second future-work defense).
#include <gtest/gtest.h>

#include <cmath>

#include "attack/carlini_wagner.hpp"
#include "attack/distillation.hpp"
#include "attack/fgsm.hpp"
#include "metrics/success.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace taamr {
namespace {

nn::MiniResNetConfig tiny_config() {
  nn::MiniResNetConfig cfg;
  cfg.image_size = 8;
  cfg.base_width = 4;
  cfg.blocks_per_stage = 1;
  cfg.num_classes = 3;
  return cfg;
}

void make_task(Tensor& images, std::vector<std::int64_t>& labels, std::int64_t n,
               Rng& rng) {
  images = Tensor({n, 3, 8, 8});
  labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t label = i % 3;
    labels[static_cast<std::size_t>(i)] = label;
    const float base = 0.2f + 0.3f * static_cast<float>(label);
    for (std::int64_t j = 0; j < 192; ++j) {
      images[i * 192 + j] =
          std::clamp(base + rng.gaussian_f(0.0f, 0.05f), 0.0f, 1.0f);
    }
  }
}

nn::Classifier& trained_classifier() {
  static nn::Classifier classifier = [] {
    Rng rng(301);
    nn::Classifier c(tiny_config(), rng);
    Tensor images;
    std::vector<std::int64_t> labels;
    make_task(images, labels, 90, rng);
    nn::SgdConfig sgd;
    sgd.learning_rate = 0.05f;
    c.fit(images, labels, 6, 16, sgd, rng, false);
    return c;
  }();
  return classifier;
}

TEST(CarliniWagner, ConfigValidation) {
  attack::AttackConfig cfg;
  EXPECT_NO_THROW(attack::CarliniWagner{cfg});
  cfg.iterations = 0;
  EXPECT_THROW(attack::CarliniWagner{cfg}, std::invalid_argument);
  cfg = {};
  cfg.params["initial_c"] = 0.0f;
  EXPECT_THROW(attack::CarliniWagner{cfg}, std::invalid_argument);
  cfg = {};
  cfg.params["confidence"] = -1.0f;
  EXPECT_THROW(attack::CarliniWagner{cfg}, std::invalid_argument);
  cfg = {};
  cfg.params["binary_search_steps"] = 0.0f;
  EXPECT_THROW(attack::CarliniWagner{cfg}, std::invalid_argument);
  cfg = {};
  cfg.clip_min = 1.0f;
  cfg.clip_max = 0.0f;
  EXPECT_THROW(attack::CarliniWagner{cfg}, std::invalid_argument);
}

TEST(CarliniWagner, FindsAdversarialExamplesOnAdjacentClass) {
  nn::Classifier& c = trained_classifier();
  Rng rng(302);
  Tensor images;
  std::vector<std::int64_t> labels;
  make_task(images, labels, 6, rng);
  // Target every image at class 1 (reachable from both class 0 and 2).
  const std::vector<std::int64_t> targets(6, 1);
  attack::AttackConfig cfg;
  cfg.iterations = 60;
  attack::CarliniWagner cw(cfg);
  Rng arng(312);
  const Tensor adv = cw.perturb(c, images, targets, arng);
  const auto stats = metrics::attack_success(c, adv, 1);
  EXPECT_GT(stats.success_rate, 0.6);
  EXPECT_GT(cw.last_successes(), 3);
  EXPECT_GT(cw.last_mean_l2(), 0.0);
}

TEST(CarliniWagner, RespectsPixelBox) {
  nn::Classifier& c = trained_classifier();
  Rng rng(303);
  Tensor images;
  std::vector<std::int64_t> labels;
  make_task(images, labels, 4, rng);
  attack::CarliniWagner cw{attack::AttackConfig{}};
  Rng arng(313);
  const Tensor adv = cw.perturb(c, images, {1, 1, 1, 1}, arng);
  EXPECT_GE(ops::min(adv), 0.0f);
  EXPECT_LE(ops::max(adv), 1.0f);
}

TEST(CarliniWagner, DistortionIsSmallerThanFgsmAtSameSuccess) {
  // C&W's selling point: minimal-distortion targeted examples. Compare L2
  // of its successful examples against an FGSM budget that also succeeds.
  nn::Classifier& c = trained_classifier();
  Rng rng(304);
  Tensor images;
  std::vector<std::int64_t> labels;
  make_task(images, labels, 6, rng);
  const std::vector<std::int64_t> targets(6, 1);

  attack::AttackConfig cw_cfg;
  cw_cfg.iterations = 80;
  attack::CarliniWagner cw(cw_cfg);
  Rng cw_rng(314);
  const Tensor adv_cw = cw.perturb(c, images, targets, cw_rng);

  attack::AttackConfig fgsm_cfg;
  fgsm_cfg.epsilon = attack::epsilon_from_255(48.0f);
  attack::Fgsm fgsm(fgsm_cfg);
  Rng arng(305);
  const Tensor adv_fgsm = fgsm.perturb(c, images, targets, arng);

  // Mean L2 over all images (unchanged C&W failures count as 0 distortion,
  // which only helps FGSM in this comparison if C&W failed).
  const double l2_cw = std::sqrt(ops::squared_distance(adv_cw, images) / 6.0);
  const double l2_fgsm = std::sqrt(ops::squared_distance(adv_fgsm, images) / 6.0);
  EXPECT_LT(l2_cw, l2_fgsm);
}

TEST(CarliniWagner, ValidatesInput) {
  nn::Classifier& c = trained_classifier();
  attack::CarliniWagner cw{attack::AttackConfig{}};
  Rng arng(315);
  EXPECT_THROW(cw.perturb(c, Tensor({2, 3, 8, 8}), {0}, arng),
               std::invalid_argument);
  EXPECT_THROW(cw.perturb(c, Tensor({1, 3, 8, 8}), {7}, arng),
               std::invalid_argument);
  EXPECT_THROW(cw.perturb(c, Tensor({3, 8, 8}), {0}, arng),
               std::invalid_argument);
}

TEST(SoftTargetLoss, MatchesHardLossAtOneHot) {
  Rng rng(306);
  Tensor logits({3, 4});
  testing::fill_uniform(logits, rng, -2.0f, 2.0f);
  const std::vector<std::int64_t> labels = {1, 3, 0};
  nn::SoftmaxCrossEntropy hard;
  const float hard_loss = hard.forward(logits, labels);
  Tensor onehot({3, 4}, 0.0f);
  for (std::int64_t i = 0; i < 3; ++i) onehot.at(i, labels[static_cast<std::size_t>(i)]) = 1.0f;
  nn::SoftTargetCrossEntropy soft;
  EXPECT_NEAR(soft.forward(logits, onehot, 1.0f), hard_loss, 1e-5f);
  testing::expect_tensor_near(soft.backward(), hard.backward(), 1e-6f, "soft vs hard");
}

TEST(SoftTargetLoss, GradientMatchesFiniteDifference) {
  Rng rng(307);
  Tensor logits({2, 3});
  testing::fill_uniform(logits, rng, -1.0f, 1.0f);
  Tensor targets({2, 3}, std::vector<float>{0.2f, 0.5f, 0.3f, 0.6f, 0.1f, 0.3f});
  const float temperature = 5.0f;
  nn::SoftTargetCrossEntropy loss;
  loss.forward(logits, targets, temperature);
  const Tensor g = loss.backward();
  const float h = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor up = logits, down = logits;
    up[i] += h;
    down[i] -= h;
    nn::SoftTargetCrossEntropy l2;
    const float numeric =
        (l2.forward(up, targets, temperature) - l2.forward(down, targets, temperature)) /
        (2 * h);
    EXPECT_NEAR(g[i], numeric, 1e-3f);
  }
}

TEST(SoftTargetLoss, Validation) {
  nn::SoftTargetCrossEntropy loss;
  EXPECT_THROW(loss.forward(Tensor({2, 3}), Tensor({2, 4})), std::invalid_argument);
  EXPECT_THROW(loss.forward(Tensor({2, 3}), Tensor({2, 3}), 0.0f),
               std::invalid_argument);
  nn::SoftTargetCrossEntropy fresh;
  EXPECT_THROW(fresh.backward(), std::logic_error);
}

TEST(Distillation, StudentLearnsTask) {
  Rng rng(308);
  Tensor images;
  std::vector<std::int64_t> labels;
  make_task(images, labels, 90, rng);
  attack::DistillationConfig cfg;
  cfg.temperature = 5.0f;
  cfg.teacher_epochs = 15;
  cfg.student_epochs = 15;
  cfg.sgd.learning_rate = 0.1f;
  nn::Classifier student = attack::distill(tiny_config(), images, labels, cfg, rng);
  EXPECT_GT(student.evaluate_accuracy(images, labels), 0.8);
}

TEST(Distillation, StudentLogitsAreSharper) {
  // Deployed at T = 1, the distilled student's logits carry the training
  // temperature: its max softmax probability is pushed toward 1, which is
  // the gradient-masking mechanism of the defense.
  Rng rng(309);
  Tensor images;
  std::vector<std::int64_t> labels;
  make_task(images, labels, 90, rng);
  attack::DistillationConfig cfg;
  cfg.temperature = 5.0f;
  cfg.teacher_epochs = 15;
  cfg.student_epochs = 15;
  cfg.sgd.learning_rate = 0.1f;
  nn::Classifier student = attack::distill(tiny_config(), images, labels, cfg, rng);

  nn::Classifier standard(tiny_config(), rng);
  nn::SgdConfig sgd;
  sgd.learning_rate = 0.05f;
  standard.fit(images, labels, 6, 16, sgd, rng, false);

  auto mean_max_prob = [&](nn::Classifier& m) {
    const Tensor p = m.probabilities(images);
    double acc = 0.0;
    for (std::int64_t i = 0; i < p.dim(0); ++i) {
      float mx = 0.0f;
      for (std::int64_t j = 0; j < p.dim(1); ++j) mx = std::max(mx, p.at(i, j));
      acc += mx;
    }
    return acc / static_cast<double>(p.dim(0));
  };
  EXPECT_GT(mean_max_prob(student), mean_max_prob(standard) - 0.05);
}

TEST(Distillation, Validation) {
  Rng rng(310);
  Tensor images;
  std::vector<std::int64_t> labels;
  make_task(images, labels, 12, rng);
  attack::DistillationConfig cfg;
  cfg.temperature = -1.0f;
  EXPECT_THROW(attack::distill(tiny_config(), images, labels, cfg, rng),
               std::invalid_argument);
  cfg = {};
  labels.pop_back();
  EXPECT_THROW(attack::distill(tiny_config(), images, labels, cfg, rng),
               std::invalid_argument);
}

TEST(LogitsInputGradient, AgreesWithCrossEntropyPath) {
  // The CE input gradient must equal the logit pullback of the CE logit
  // gradient — ties the two Classifier APIs together.
  nn::Classifier& c = trained_classifier();
  Rng rng(311);
  Tensor x({2, 3, 8, 8});
  testing::fill_uniform(x, rng, 0.2f, 0.8f);
  const std::vector<std::int64_t> labels = {0, 2};
  const Tensor g_ce = c.loss_input_gradient(x, labels);

  Tensor logits;
  // Compute softmax-CE logit gradient by hand (per-image, not averaged).
  logits = c.logits(x);
  Tensor cot = ops::softmax_rows(logits);
  for (std::int64_t i = 0; i < 2; ++i) cot.at(i, labels[static_cast<std::size_t>(i)]) -= 1.0f;
  const Tensor g_pullback = c.logits_input_gradient(x, cot);
  testing::expect_tensor_near(g_ce, g_pullback, 1e-4f, "CE vs pullback");
}

}  // namespace
}  // namespace taamr
