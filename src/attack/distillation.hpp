// Defensive distillation (Papernot et al., S&P 2016): the second defense
// the paper's future-work section names. A teacher is trained with a
// high-temperature softmax; a student of the same architecture is trained
// on the teacher's tempered probabilities and then deployed at T = 1,
// which flattens the input-gradient field attackers descend.
#pragma once

#include "nn/classifier.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace taamr::attack {

struct DistillationConfig {
  float temperature = 20.0f;
  std::int64_t teacher_epochs = 8;
  std::int64_t student_epochs = 8;
  std::int64_t batch_size = 32;
  nn::SgdConfig sgd;

  void validate() const;
};

// Trains teacher + student from scratch; returns the distilled student.
nn::Classifier distill(const nn::MiniResNetConfig& architecture, const Tensor& images,
                       const std::vector<std::int64_t>& labels,
                       const DistillationConfig& config, Rng& rng);

}  // namespace taamr::attack
