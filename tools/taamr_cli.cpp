// taamr — the command-line driver for the library. Subcommands:
//
//   taamr stats   --dataset "Amazon Men" [--scale 0.025]
//       dataset statistics + per-category composition (Table I material)
//
//   taamr render  --category Sock --seed 7 --out sock.ppm [--size 32] [--upscale 8]
//       render one procedural product image to a viewable PPM
//
//   taamr attack  --dataset "Amazon Men" --source Sock --target "Running Shoe"
//                 [--attack pgd|fgsm|mim|cw|...] [--eps 8] [--scale 0.01]
//                 [--model vbpr|amr] [--cache taamr_cache]
//       run one TAaMR scenario end-to-end and print CHR / success / quality
//
//   taamr fig2    --dataset "Amazon Men" [--scale 0.01] [--out-prefix fig2]
//       write the before/after product images of the showcased item
#include <iostream>

#include "core/pipeline.hpp"
#include "core/scenario.hpp"
#include "data/categories.hpp"
#include "data/serialize.hpp"
#include "metrics/chr.hpp"
#include "metrics/image_quality.hpp"
#include "metrics/success.hpp"
#include "recsys/ranker.hpp"
#include "util/args.hpp"
#include "util/ppm.hpp"
#include "util/table.hpp"

namespace {

using namespace taamr;

int usage() {
  std::cerr << "usage: taamr <stats|render|attack|fig2> [--flags]\n"
               "run `taamr <subcommand> --help` conventions: see the header of\n"
               "tools/taamr_cli.cpp for every flag.\n";
  return 2;
}

int cmd_stats(const ArgParser& args) {
  const std::string dataset_name = args.get("dataset", "Amazon Men");
  const double scale = args.get_double("scale", data::kBenchScale);
  const auto ds =
      data::generate_synthetic_dataset(data::spec_by_name(dataset_name, scale));
  const auto stats = data::compute_stats(ds);
  Table t("Dataset statistics: " + ds.name);
  t.header({"|U|", "|I|", "|S|", "density", "mean |I_u|"});
  t.row({Table::count(stats.num_users), Table::count(stats.num_items),
         Table::count(stats.num_feedback), Table::fmt(stats.density * 100.0, 4) + "%",
         Table::fmt(stats.mean_interactions_per_user, 2)});
  t.print(std::cout);

  Table c("Per-category composition");
  c.header({"Category", "items", "train feedback"});
  for (std::int32_t cat = 0; cat < data::num_categories(); ++cat) {
    c.row({data::category_name(cat),
           Table::count(stats.items_per_category[static_cast<std::size_t>(cat)]),
           Table::count(stats.feedback_per_category[static_cast<std::size_t>(cat)])});
  }
  c.print(std::cout);
  if (args.has("save")) {
    data::save_dataset_file(args.get("save"), ds);
    std::cout << "dataset written to " << args.get("save") << "\n";
  }
  return 0;
}

int cmd_render(const ArgParser& args) {
  const std::int32_t category = data::category_id_by_name(args.get("category"));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  data::ImageGenConfig cfg;
  cfg.size = args.get_int("size", 32);
  const Tensor img = data::render_item_image(
      data::fashion_taxonomy()[static_cast<std::size_t>(category)].style, seed, cfg);
  const std::string out = args.get("out", "item.ppm");
  write_ppm(out, img, static_cast<int>(args.get_int("upscale", 8)));
  std::cout << "wrote " << out << " (" << cfg.size << "x" << cfg.size << ", "
            << args.get_int("upscale", 8) << "x upscale)\n";
  return 0;
}

int cmd_attack(const ArgParser& args) {
  core::PipelineConfig cfg;
  cfg.dataset_name = args.get("dataset", "Amazon Men");
  cfg.scale = args.get_double("scale", 0.01);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.cache_dir = args.get("cache", "taamr_cache");
  const std::int32_t source = data::category_id_by_name(args.get("source", "Sock"));
  const std::int32_t target =
      data::category_id_by_name(args.get("target", "Running Shoe"));
  const float eps = static_cast<float>(args.get_double("eps", 8.0));
  const std::string model_name = args.get("model", "vbpr");
  const std::string attack_key = args.get("attack", "pgd");

  core::Pipeline pipeline(cfg);
  pipeline.prepare();
  const auto& ds = pipeline.dataset();
  std::unique_ptr<recsys::Vbpr> model;
  if (model_name == "vbpr") {
    model = pipeline.train_vbpr();
  } else if (model_name == "amr") {
    model = pipeline.train_amr();
  } else {
    throw std::invalid_argument("unknown --model '" + model_name + "' (vbpr|amr)");
  }

  // Attack the source category's images.
  const auto items = ds.items_of_category(source);
  const Tensor clean = data::gather_images(pipeline.catalog(), items);
  const std::vector<std::int64_t> targets(items.size(),
                                          static_cast<std::int64_t>(target));
  attack::AttackConfig acfg;
  acfg.epsilon = attack::epsilon_from_255(eps);
  Rng rng(cfg.seed ^ 0xc11);
  auto attacker = attack::make(attack_key, acfg);  // throws with the known keys
  const Tensor adv = attacker->perturb(pipeline.classifier(), clean, targets, rng);
  const std::string attack_name = attacker->name();

  const auto success =
      metrics::attack_success(pipeline.classifier(), adv, target, attack_name);
  const auto visual =
      metrics::average_visual_quality(pipeline.classifier(), clean, adv);
  const auto before = recsys::top_n_lists(*model, ds, cfg.top_n);
  const double chr_before =
      metrics::category_hit_ratio(before, ds, source, cfg.top_n);
  model->set_item_features(pipeline.features_with_attack(items, adv));
  const auto after = recsys::top_n_lists(*model, ds, cfg.top_n);
  const double chr_after = metrics::category_hit_ratio(after, ds, source, cfg.top_n);

  Table t("TAaMR: " + data::category_name(source) + " -> " +
          data::category_name(target) + " | " + attack_name + " eps=" +
          Table::fmt(eps, 0) + "/255 | " + model->name() + " on " + ds.name);
  t.header({"attacked items", "success", "CHR@100 before", "CHR@100 after", "PSNR",
            "SSIM", "PSM"});
  t.row({std::to_string(items.size()), Table::pct(success.success_rate, 1),
         Table::fmt(chr_before * 100, 3) + "%", Table::fmt(chr_after * 100, 3) + "%",
         Table::fmt(visual.psnr, 2) + " dB", Table::fmt(visual.ssim, 4),
         Table::fmt(visual.psm, 4)});
  t.print(std::cout);
  return 0;
}

int cmd_fig2(const ArgParser& args) {
  core::PipelineConfig cfg;
  cfg.dataset_name = args.get("dataset", "Amazon Men");
  cfg.scale = args.get_double("scale", 0.01);
  cfg.cache_dir = args.get("cache", "taamr_cache");
  core::Pipeline pipeline(cfg);
  pipeline.prepare();
  const auto& ds = pipeline.dataset();
  const auto scenarios = core::paper_scenarios(ds.name, "VBPR");
  const auto batch = pipeline.attack_category(
      scenarios.front().source_category, scenarios.front().target_category,
      "pgd", 8.0f);
  // The most confidently flipped item of the batch.
  const Tensor probs = pipeline.classifier().probabilities(batch.attacked_images);
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < probs.dim(0); ++i) {
    if (probs.at(i, scenarios.front().target_category) >
        probs.at(best, scenarios.front().target_category)) {
      best = i;
    }
  }
  const std::string prefix = args.get("out-prefix", "fig2");
  const Shape img = {3, batch.clean_images.dim(2), batch.clean_images.dim(3)};
  const std::int64_t elems = shape_numel(img);
  Tensor clean(img), adv(img);
  std::copy(batch.clean_images.data() + best * elems,
            batch.clean_images.data() + (best + 1) * elems, clean.data());
  std::copy(batch.attacked_images.data() + best * elems,
            batch.attacked_images.data() + (best + 1) * elems, adv.data());
  write_ppm(prefix + "_original.ppm", clean, 8);
  write_ppm(prefix + "_attacked.ppm", adv, 8);
  std::cout << "item #" << batch.items[static_cast<std::size_t>(best)]
            << ": P[target] = "
            << Table::pct(probs.at(best, scenarios.front().target_category), 1)
            << ", PSNR = " << Table::fmt(metrics::psnr(clean, adv), 2) << " dB\n"
            << "wrote " << prefix << "_original.ppm / " << prefix
            << "_attacked.ppm\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace taamr;
  if (argc < 2) return usage();
  const std::string command = argv[1];
  ArgParser args(argc - 1, argv + 1);
  try {
    int rc;
    if (command == "stats") {
      rc = cmd_stats(args);
    } else if (command == "render") {
      rc = cmd_render(args);
    } else if (command == "attack") {
      rc = cmd_attack(args);
    } else if (command == "fig2") {
      rc = cmd_fig2(args);
    } else {
      return usage();
    }
    for (const std::string& flag : args.unused()) {
      std::cerr << "warning: unused flag --" << flag << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
