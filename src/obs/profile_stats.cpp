#include "obs/profile_stats.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <stdexcept>

namespace taamr::obs {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("folded profile line " + std::to_string(line_no) +
                           ": " + why);
}

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

void check_stack(const std::string& stack, std::size_t line_no) {
  if (stack.empty()) fail(line_no, "empty stack");
  if (stack.front() == ';' || stack.back() == ';') {
    fail(line_no, "empty frame at stack boundary");
  }
  if (stack.find(";;") != std::string::npos) fail(line_no, "empty frame");
}

}  // namespace

std::uint64_t FoldedProfile::total_weight() const {
  std::uint64_t total = 0;
  for (const auto& [stack, weight] : stacks) total += weight;
  return total;
}

void FoldedProfile::add(const std::string& stack, std::uint64_t weight) {
  stacks[stack] += weight;
}

FoldedProfile parse_folded(const std::string& text) {
  FoldedProfile profile;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;

    const std::size_t last_space = line.find_last_of(' ');
    if (last_space == std::string::npos) fail(line_no, "no weight field");
    const std::string weight_text = line.substr(last_space + 1);
    if (!all_digits(weight_text)) {
      fail(line_no, "weight is not a non-negative integer: '" + weight_text +
                        "'");
    }
    std::uint64_t weight = 0;
    try {
      weight = std::stoull(weight_text);
    } catch (const std::out_of_range&) {
      fail(line_no, "weight overflows 64 bits");
    }

    std::string stack = line.substr(0, last_space);
    while (!stack.empty() && stack.back() == ' ') stack.pop_back();
    check_stack(stack, line_no);
    profile.add(stack, weight);
  }
  if (profile.empty()) {
    throw std::runtime_error(
        "folded profile contains no stack lines (empty or truncated "
        "document)");
  }
  return profile;
}

std::string to_folded(const FoldedProfile& p) {
  std::string out;
  for (const auto& [stack, weight] : p.stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(weight);
    out += '\n';
  }
  return out;
}

void merge_folded(FoldedProfile& into, const FoldedProfile& from) {
  for (const auto& [stack, weight] : from.stacks) into.add(stack, weight);
}

namespace {

std::vector<std::string> split_frames(const std::string& stack) {
  std::vector<std::string> frames;
  std::size_t start = 0;
  while (true) {
    const std::size_t semi = stack.find(';', start);
    if (semi == std::string::npos) {
      frames.push_back(stack.substr(start));
      return frames;
    }
    frames.push_back(stack.substr(start, semi - start));
    start = semi + 1;
  }
}

std::map<std::string, FrameStat> frame_rollup(const FoldedProfile& p) {
  std::map<std::string, FrameStat> by_frame;
  for (const auto& [stack, weight] : p.stacks) {
    const std::vector<std::string> frames = split_frames(stack);
    std::set<std::string> seen;
    for (const std::string& frame : frames) {
      if (!seen.insert(frame).second) continue;  // recursion: count once
      FrameStat& stat = by_frame[frame];
      stat.frame = frame;
      stat.total += weight;
    }
    by_frame[frames.back()].self += weight;
  }
  return by_frame;
}

}  // namespace

std::vector<FrameStat> top_frames(const FoldedProfile& p, std::size_t top_k) {
  std::vector<FrameStat> ranked;
  for (auto& [frame, stat] : frame_rollup(p)) ranked.push_back(stat);
  std::sort(ranked.begin(), ranked.end(),
            [](const FrameStat& a, const FrameStat& b) {
              if (a.self != b.self) return a.self > b.self;
              return a.frame < b.frame;
            });
  if (top_k != 0 && ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

std::vector<ProfileDelta> diff_folded(const FoldedProfile& baseline,
                                      const FoldedProfile& current,
                                      double threshold) {
  const auto base_frames = frame_rollup(baseline);
  const auto cur_frames = frame_rollup(current);
  const double base_total = static_cast<double>(baseline.total_weight());
  const double cur_total = static_cast<double>(current.total_weight());

  std::vector<ProfileDelta> regressions;
  if (base_total <= 0.0 || cur_total <= 0.0) return regressions;

  for (const auto& [frame, stat] : cur_frames) {
    const double cur_share = static_cast<double>(stat.self) / cur_total;
    const auto it = base_frames.find(frame);
    const double base_share =
        it == base_frames.end()
            ? 0.0
            : static_cast<double>(it->second.self) / base_total;
    // Exclusive threshold with a float guard: shares are quotients of
    // integer weights, so "grew by exactly the threshold" must not trip it.
    if (cur_share - base_share > threshold + 1e-9) {
      regressions.push_back(ProfileDelta{frame, base_share, cur_share});
    }
  }
  std::sort(regressions.begin(), regressions.end(),
            [](const ProfileDelta& a, const ProfileDelta& b) {
              const double ga = a.cur_share - a.base_share;
              const double gb = b.cur_share - b.base_share;
              if (ga != gb) return ga > gb;
              return a.frame < b.frame;
            });
  return regressions;
}

std::string kernel_family_for_stack(const std::string& stack) {
  // Leaf-most match wins: walk frames from the leaf towards the root so an
  // im2col path that bottoms out in gemm books as gemm, matching how the
  // cost accountant attributes the flops.
  const std::vector<std::string> frames = split_frames(stack);
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    std::string lower = *it;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower.find("gemm") != std::string::npos ||
        lower.find("matmul") != std::string::npos) {
      return "gemm";
    }
    if (lower.find("im2col") != std::string::npos ||
        lower.find("col2im") != std::string::npos ||
        lower.find("conv") != std::string::npos) {
      return "im2col";
    }
    if (lower.find("softmax") != std::string::npos ||
        lower.find("reduce") != std::string::npos ||
        lower.find("norm") != std::string::npos ||
        lower.find("argmax") != std::string::npos ||
        lower.find("dot") != std::string::npos) {
      return "reduction";
    }
    if (lower.find("score_all") != std::string::npos ||
        lower.find("recsys") != std::string::npos ||
        lower.find("rank") != std::string::npos) {
      return "recsys_score";
    }
    if (lower.find("axpy") != std::string::npos ||
        lower.find("clamp") != std::string::npos ||
        lower.find("elementwise") != std::string::npos ||
        lower.find("apply") != std::string::npos) {
      return "elementwise";
    }
  }
  return "other";
}

}  // namespace taamr::obs
