#include "nn/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace taamr::nn {

namespace {
constexpr std::int64_t kInferenceBatch = 64;
}

std::int64_t feature_batch_size() {
  static const std::int64_t batch = [] {
    if (const char* s = std::getenv("TAAMR_FEATURE_BATCH")) {
      char* end = nullptr;
      const long v = std::strtol(s, &end, 10);
      if (end != s && *end == '\0' && v > 0) return static_cast<std::int64_t>(v);
      log_warn() << "ignoring malformed TAAMR_FEATURE_BATCH='" << s
                 << "', using default " << kInferenceBatch;
    }
    return kInferenceBatch;
  }();
  return batch;
}

Tensor slice_rows(const Tensor& t, std::int64_t begin, std::int64_t end) {
  if (t.ndim() < 1 || begin < 0 || end > t.dim(0) || begin >= end) {
    throw std::invalid_argument("slice_rows: bad range");
  }
  const std::int64_t row_elems = t.numel() / t.dim(0);
  Shape out_shape = t.shape();
  out_shape[0] = end - begin;
  Tensor out(out_shape);
  std::memcpy(out.data(), t.data() + begin * row_elems,
              static_cast<std::size_t>((end - begin) * row_elems) * sizeof(float));
  return out;
}

Classifier::Classifier(MiniResNetConfig config, Rng& rng)
    : model_(build_mini_resnet(config, rng)) {}

TrainStats Classifier::train_epoch(const Tensor& images,
                                   const std::vector<std::int64_t>& labels,
                                   std::int64_t batch_size, Sgd& optimizer, Rng& rng) {
  const std::int64_t n = images.dim(0);
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("train_epoch: label count mismatch");
  }
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  const std::int64_t row_elems = images.numel() / n;
  SoftmaxCrossEntropy loss;
  double loss_sum = 0.0;
  std::int64_t correct = 0;

  for (std::int64_t start = 0; start < n; start += batch_size) {
    const std::int64_t bsz = std::min(batch_size, n - start);
    Shape batch_shape = images.shape();
    batch_shape[0] = bsz;
    Tensor batch(batch_shape);
    std::vector<std::int64_t> batch_labels(static_cast<std::size_t>(bsz));
    for (std::int64_t b = 0; b < bsz; ++b) {
      const std::int64_t src = order[static_cast<std::size_t>(start + b)];
      std::memcpy(batch.data() + b * row_elems, images.data() + src * row_elems,
                  static_cast<std::size_t>(row_elems) * sizeof(float));
      batch_labels[static_cast<std::size_t>(b)] = labels[static_cast<std::size_t>(src)];
    }

    model_.net.zero_grad();
    const Tensor logits = model_.net.forward(batch, /*train=*/true);
    const float batch_loss = loss.forward(logits, batch_labels);
    model_.net.backward(loss.backward());
    optimizer.step(model_.net.params());

    loss_sum += static_cast<double>(batch_loss) * bsz;
    const auto pred = ops::argmax_rows(logits);
    for (std::int64_t b = 0; b < bsz; ++b) {
      if (pred[static_cast<std::size_t>(b)] == batch_labels[static_cast<std::size_t>(b)]) {
        ++correct;
      }
    }
  }
  double grad_sq = 0.0;
  for (const Param* p : model_.net.params()) {
    if (!p->trainable) continue;
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      grad_sq += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  return TrainStats{static_cast<float>(loss_sum / static_cast<double>(n)),
                    static_cast<double>(correct) / static_cast<double>(n),
                    std::sqrt(grad_sq)};
}

void Classifier::fit(const Tensor& images, const std::vector<std::int64_t>& labels,
                     std::int64_t epochs, std::int64_t batch_size, SgdConfig sgd_config,
                     Rng& rng, bool verbose) {
  Sgd optimizer(sgd_config);
  auto& loss_hist = obs::MetricsRegistry::global().histogram(
      "cnn_epoch_loss", {}, obs::exponential_bounds(1e-3, 2.0, 20));
  auto& epochs_total = obs::MetricsRegistry::global().counter("cnn_epochs_total");
  for (std::int64_t epoch = 0; epoch < epochs; ++epoch) {
    TAAMR_TRACE_SPAN("cnn/epoch");
    Stopwatch epoch_timer;
    // Step schedule: decay 10x at 60% and 85% of the run.
    float lr = sgd_config.learning_rate;
    if (epoch >= (epochs * 85) / 100) {
      lr *= 0.01f;
    } else if (epoch >= (epochs * 60) / 100) {
      lr *= 0.1f;
    }
    optimizer.set_learning_rate(lr);
    const TrainStats stats = train_epoch(images, labels, batch_size, optimizer, rng);
    const double examples_per_sec =
        static_cast<double>(images.dim(0)) / std::max(epoch_timer.seconds(), 1e-9);
    loss_hist.observe(static_cast<double>(stats.loss));
    epochs_total.increment();
    obs::runlog("cnn_epoch", {{"epoch", static_cast<double>(epoch + 1)},
                              {"loss", static_cast<double>(stats.loss)},
                              {"accuracy", stats.accuracy},
                              {"grad_norm", stats.grad_norm},
                              {"lr", static_cast<double>(lr)},
                              {"examples_per_sec", examples_per_sec}});
    if (verbose) {
      log_info() << "cnn epoch " << (epoch + 1) << "/" << epochs << " loss=" << stats.loss
                 << " acc=" << stats.accuracy;
    }
  }
}

template <typename Fn>
Tensor Classifier::batched(const Tensor& images, std::int64_t batch,
                           std::int64_t out_cols, Fn fn) {
  if (images.ndim() != 4) throw std::invalid_argument("Classifier: expected [N, C, H, W]");
  const std::int64_t n = images.dim(0);
  Tensor out({n, out_cols});
  for (std::int64_t start = 0; start < n; start += batch) {
    const std::int64_t end = std::min(n, start + batch);
    const Tensor chunk = slice_rows(images, start, end);
    const Tensor res = fn(chunk);
    if (res.dim(1) != out_cols || res.dim(0) != end - start) {
      throw std::logic_error("Classifier::batched: inner fn returned bad shape");
    }
    std::memcpy(out.data() + start * out_cols, res.data(),
                static_cast<std::size_t>((end - start) * out_cols) * sizeof(float));
  }
  return out;
}

Tensor Classifier::logits(const Tensor& images) {
  return batched(images, kInferenceBatch, num_classes(),
                 [this](const Tensor& x) { return model_.net.forward(x, false); });
}

Tensor Classifier::probabilities(const Tensor& images) {
  return ops::softmax_rows(logits(images));
}

std::vector<std::int64_t> Classifier::predict(const Tensor& images) {
  return ops::argmax_rows(logits(images));
}

double Classifier::evaluate_accuracy(const Tensor& images,
                                     const std::vector<std::int64_t>& labels,
                                     std::int64_t batch_size) {
  (void)batch_size;
  return accuracy(logits(images), labels);
}

Tensor Classifier::features(const Tensor& images) {
  return batched(images, feature_batch_size(), feature_dim(), [this](const Tensor& x) {
    return model_.net.forward_to(x, model_.feature_end, false);
  });
}

Tensor Classifier::loss_input_gradient(const Tensor& images,
                                       const std::vector<std::int64_t>& labels,
                                       float* out_loss) {
  if (images.ndim() != 4) {
    throw std::invalid_argument("loss_input_gradient: expected [N, C, H, W]");
  }
  const std::int64_t n = images.dim(0);
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("loss_input_gradient: label count mismatch");
  }
  Tensor grad(images.shape());
  const std::int64_t row_elems = images.numel() / n;
  double loss_sum = 0.0;
  SoftmaxCrossEntropy loss;
  for (std::int64_t start = 0; start < n; start += kInferenceBatch) {
    const std::int64_t end = std::min(n, start + kInferenceBatch);
    const Tensor chunk = slice_rows(images, start, end);
    const std::vector<std::int64_t> chunk_labels(labels.begin() + start,
                                                 labels.begin() + end);
    model_.net.zero_grad();
    const Tensor chunk_logits = model_.net.forward(chunk, /*train=*/false);
    const float chunk_loss = loss.forward(chunk_logits, chunk_labels);
    Tensor gx = model_.net.backward(loss.backward());
    // loss.backward() averages over the chunk; rescale so the returned
    // tensor is the per-image gradient of the per-image loss (attack steps
    // must not depend on how images were batched).
    ops::scale_inplace(gx, static_cast<float>(end - start));
    std::memcpy(grad.data() + start * row_elems, gx.data(),
                static_cast<std::size_t>((end - start) * row_elems) * sizeof(float));
    loss_sum += static_cast<double>(chunk_loss) * (end - start);
  }
  if (out_loss != nullptr) {
    *out_loss = static_cast<float>(loss_sum / static_cast<double>(n));
  }
  return grad;
}

Tensor Classifier::logits_input_gradient(const Tensor& images,
                                          const Tensor& grad_logits,
                                          Tensor* out_logits) {
  if (images.ndim() != 4) {
    throw std::invalid_argument("logits_input_gradient: expected [N, C, H, W]");
  }
  const std::int64_t n = images.dim(0);
  if (grad_logits.ndim() != 2 || grad_logits.dim(0) != n ||
      grad_logits.dim(1) != num_classes()) {
    throw std::invalid_argument("logits_input_gradient: cotangent must be [N, classes]");
  }
  Tensor grad(images.shape());
  if (out_logits != nullptr) *out_logits = Tensor({n, num_classes()});
  const std::int64_t row_elems = images.numel() / n;
  for (std::int64_t start = 0; start < n; start += kInferenceBatch) {
    const std::int64_t end = std::min(n, start + kInferenceBatch);
    const Tensor chunk = slice_rows(images, start, end);
    const Tensor chunk_logits = model_.net.forward(chunk, /*train=*/false);
    const Tensor chunk_cot = slice_rows(grad_logits, start, end);
    const Tensor gx = model_.net.backward(chunk_cot);
    std::memcpy(grad.data() + start * row_elems, gx.data(),
                static_cast<std::size_t>((end - start) * row_elems) * sizeof(float));
    if (out_logits != nullptr) {
      std::memcpy(out_logits->data() + start * num_classes(), chunk_logits.data(),
                  static_cast<std::size_t>((end - start) * num_classes()) *
                      sizeof(float));
    }
  }
  return grad;
}

Tensor Classifier::feature_input_gradient(const Tensor& images,
                                          const Tensor& target_features,
                                          float* out_distance) {
  if (images.ndim() != 4) {
    throw std::invalid_argument("feature_input_gradient: expected [N, C, H, W]");
  }
  const std::int64_t n = images.dim(0);
  const std::int64_t d = feature_dim();
  if (target_features.ndim() != 2 || target_features.dim(0) != n ||
      target_features.dim(1) != d) {
    throw std::invalid_argument("feature_input_gradient: targets must be [N, D]");
  }
  Tensor grad(images.shape());
  const std::int64_t row_elems = images.numel() / n;
  double distance_sum = 0.0;
  for (std::int64_t start = 0; start < n; start += kInferenceBatch) {
    const std::int64_t end = std::min(n, start + kInferenceBatch);
    const Tensor chunk = slice_rows(images, start, end);
    const Tensor feats = model_.net.forward_to(chunk, model_.feature_end, false);
    // dL/df of per-image ||f - t||^2 is 2 (f - t); each image's loss is
    // independent, so no batch averaging is involved.
    Tensor g_feat = feats;
    for (std::int64_t b = 0; b < end - start; ++b) {
      for (std::int64_t j = 0; j < d; ++j) {
        const float diff = feats.at(b, j) - target_features.at(start + b, j);
        g_feat.at(b, j) = 2.0f * diff;
        distance_sum += static_cast<double>(diff) * diff;
      }
    }
    const Tensor gx = model_.net.backward_to(g_feat, model_.feature_end);
    std::memcpy(grad.data() + start * row_elems, gx.data(),
                static_cast<std::size_t>((end - start) * row_elems) * sizeof(float));
  }
  if (out_distance != nullptr) {
    *out_distance = static_cast<float>(distance_sum / static_cast<double>(n));
  }
  return grad;
}

}  // namespace taamr::nn
