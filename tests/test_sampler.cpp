#include <gtest/gtest.h>

#include "data/amazon_synth.hpp"
#include "recsys/sampler.hpp"

namespace taamr {
namespace {

TEST(TripletSampler, TripletsAreValid) {
  const auto ds = data::generate_synthetic_dataset(data::amazon_men_spec(data::kTestScale));
  recsys::TripletSampler sampler(ds);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const recsys::Triplet t = sampler.sample(rng);
    ASSERT_GE(t.user, 0);
    ASSERT_LT(t.user, ds.num_users);
    ASSERT_TRUE(ds.user_interacted(t.user, t.pos_item));
    ASSERT_FALSE(ds.user_interacted(t.user, t.neg_item));
    ASSERT_NE(t.pos_item, t.neg_item);
  }
}

TEST(TripletSampler, CoversManyUsers) {
  const auto ds = data::generate_synthetic_dataset(data::amazon_men_spec(data::kTestScale));
  recsys::TripletSampler sampler(ds);
  Rng rng(2);
  std::vector<int> seen(static_cast<std::size_t>(ds.num_users), 0);
  for (int i = 0; i < 5000; ++i) seen[static_cast<std::size_t>(sampler.sample(rng).user)] = 1;
  int covered = 0;
  for (int s : seen) covered += s;
  EXPECT_GT(covered, static_cast<int>(0.8 * static_cast<double>(ds.num_users)));
}

TEST(TripletSampler, RejectsDegenerateDatasets) {
  data::ImplicitDataset empty;
  empty.num_users = 2;
  empty.num_items = 5;
  empty.train = {{}, {}};
  empty.test = {-1, -1};
  EXPECT_THROW(recsys::TripletSampler{empty}, std::invalid_argument);

  data::ImplicitDataset one_item;
  one_item.num_users = 1;
  one_item.num_items = 1;
  one_item.train = {{0}};
  one_item.test = {-1};
  EXPECT_THROW(recsys::TripletSampler{one_item}, std::invalid_argument);
}

}  // namespace
}  // namespace taamr
