// Momentum Iterative Method (Dong et al., CVPR 2018): iterative FGSM with a
// decaying accumulated-gradient direction. One of the "novel adversarial
// attacks" the paper's future-work section proposes integrating into TAaMR.
#pragma once

#include "attack/attack.hpp"

namespace taamr::attack {

class Mim : public Attack {
 public:
  // The decay factor mu of the MIM paper comes from params["decay"]
  // (default 1.0, the recommended setting).
  explicit Mim(AttackConfig config)
      : Attack(std::move(config)), decay_(config_.param("decay", 1.0f)) {}

  Tensor perturb(nn::Classifier& classifier, const Tensor& images,
                 const std::vector<std::int64_t>& labels, Rng& rng) override;

  std::string name() const override { return "MIM"; }
  float decay_factor() const { return decay_; }

 private:
  float decay_;
};

}  // namespace taamr::attack
