// Fixed-size worker pool with a blocking parallel_for. Used to parallelize
// the hot loops of the CNN (im2col GEMM batches, per-image attacks) without
// taking a dependency on OpenMP.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace taamr {

class ThreadPool {
 public:
  // 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs body(i) for i in [begin, end), blocking until all iterations are
  // done. Iterations are chunked; body must be safe to run concurrently
  // for distinct i. Exceptions in body terminate (keep bodies noexcept in
  // spirit).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  // Process-wide shared pool.
  static ThreadPool& global();

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Convenience wrapper over the global pool. Falls back to serial execution
// for small ranges where task overhead would dominate.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t serial_threshold = 2);

}  // namespace taamr
