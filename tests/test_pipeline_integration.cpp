#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "data/categories.hpp"
#include "metrics/chr.hpp"
#include "recsys/ranker.hpp"
#include "tensor/ops.hpp"

namespace taamr {
namespace {

// Micro-scale pipeline configuration: everything runs, nothing is big.
core::PipelineConfig micro_config(const std::string& dataset = "Amazon Men") {
  core::PipelineConfig cfg;
  cfg.dataset_name = dataset;
  cfg.scale = data::kTestScale;
  cfg.seed = 7;
  cfg.image_size = 16;
  cfg.cnn_base_width = 6;
  cfg.cnn_blocks_per_stage = 1;
  cfg.cnn_epochs = 18;
  cfg.cnn_images_per_category = 14;
  cfg.cnn_batch_size = 16;
  cfg.vbpr.epochs = 25;
  cfg.amr_warm_epochs = 12;
  cfg.amr_adversarial_epochs = 12;
  cfg.top_n = 20;
  return cfg;
}

// Shared prepared pipeline (CNN training is the expensive part).
core::Pipeline& shared_pipeline() {
  static core::Pipeline pipeline = [] {
    core::Pipeline p(micro_config());
    p.prepare();
    return p;
  }();
  return pipeline;
}

TEST(PipelineIntegration, PrepareProducesConsistentArtifacts) {
  core::Pipeline& p = shared_pipeline();
  EXPECT_EQ(p.dataset().name, "Amazon Men");
  EXPECT_EQ(p.catalog().num_items(), p.dataset().num_items);
  EXPECT_EQ(p.clean_features().dim(0), p.dataset().num_items);
  EXPECT_EQ(p.clean_features().dim(1), p.classifier().feature_dim());
  // The CNN must have learned the taxonomy reasonably well even at micro
  // scale — the procedural categories are separable.
  EXPECT_GT(p.classifier_accuracy(), 0.6);
}

TEST(PipelineIntegration, FeaturesSeparateCategories) {
  core::Pipeline& p = shared_pipeline();
  const auto& ds = p.dataset();
  const Tensor& f = p.clean_features();
  const std::int64_t d = f.dim(1);
  // Mean within-category feature distance < mean cross-category distance.
  const auto socks = ds.items_of_category(data::kSock);
  const auto clocks = ds.items_of_category(data::kAnalogClock);
  ASSERT_GE(socks.size(), 2u);
  ASSERT_GE(clocks.size(), 1u);
  auto row_dist = [&](std::int32_t a, std::int32_t b) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < d; ++j) {
      const double diff = f.at(a, j) - f.at(b, j);
      acc += diff * diff;
    }
    return acc;
  };
  EXPECT_LT(row_dist(socks[0], socks[1]), row_dist(socks[0], clocks[0]));
}

TEST(PipelineIntegration, AttackCategoryRespectsThreatModel) {
  core::Pipeline& p = shared_pipeline();
  const auto batch = p.attack_category(data::kSock, data::kRunningShoe,
                                       "pgd", 8.0f);
  EXPECT_FALSE(batch.items.empty());
  EXPECT_EQ(batch.clean_images.shape(), batch.attacked_images.shape());
  EXPECT_LE(ops::linf_distance(batch.attacked_images, batch.clean_images),
            8.0f / 255.0f + 1e-5f);
  EXPECT_GE(ops::min(batch.attacked_images), 0.0f);
  EXPECT_LE(ops::max(batch.attacked_images), 1.0f);
  for (std::int32_t item : batch.items) {
    EXPECT_EQ(p.dataset().item_category[static_cast<std::size_t>(item)], data::kSock);
  }
}

TEST(PipelineIntegration, FeaturesWithAttackOnlyChangesAttackedRows) {
  core::Pipeline& p = shared_pipeline();
  const auto batch = p.attack_category(data::kSock, data::kRunningShoe,
                                       "fgsm", 8.0f);
  const Tensor merged = p.features_with_attack(batch.items, batch.attacked_images);
  ASSERT_EQ(merged.shape(), p.clean_features().shape());
  const std::int64_t d = merged.dim(1);
  std::set<std::int32_t> attacked(batch.items.begin(), batch.items.end());
  for (std::int64_t i = 0; i < merged.dim(0); ++i) {
    double diff = 0.0;
    for (std::int64_t j = 0; j < d; ++j) {
      diff += std::abs(merged.at(i, j) - p.clean_features().at(i, j));
    }
    if (attacked.count(static_cast<std::int32_t>(i))) {
      EXPECT_GT(diff, 0.0) << "attacked item " << i << " kept clean features";
    } else {
      EXPECT_EQ(diff, 0.0) << "clean item " << i << " was modified";
    }
  }
}

TEST(PipelineIntegration, VbprAttackShiftsSourceCategoryChr) {
  core::Pipeline& p = shared_pipeline();
  auto vbpr = p.train_vbpr();
  const auto& ds = p.dataset();
  const std::int64_t top_n = 20;

  const auto lists_before = recsys::top_n_lists(*vbpr, ds, top_n);
  const double chr_before =
      metrics::category_hit_ratio(lists_before, ds, data::kSock, top_n);

  const auto batch = p.attack_category(data::kSock, data::kRunningShoe,
                                       "pgd", 16.0f);
  vbpr->set_item_features(p.features_with_attack(batch.items, batch.attacked_images));
  const auto lists_after = recsys::top_n_lists(*vbpr, ds, top_n);
  const double chr_after =
      metrics::category_hit_ratio(lists_after, ds, data::kSock, top_n);
  vbpr->set_item_features(p.clean_features());

  // The attack must move the metric; at micro scale we only assert change,
  // the directional claim is asserted by the bench-scale experiments.
  EXPECT_NE(chr_before, chr_after);
}

TEST(PipelineIntegration, PrepareIsIdempotent) {
  core::Pipeline& p = shared_pipeline();
  const Tensor before = p.clean_features();
  p.prepare();
  EXPECT_EQ(ops::linf_distance(before, p.clean_features()), 0.0f);
}

TEST(PipelineIntegration, StagesRequirePrepare) {
  core::Pipeline fresh(micro_config());
  EXPECT_THROW(fresh.dataset(), std::logic_error);
  EXPECT_THROW(fresh.train_vbpr(), std::logic_error);
  EXPECT_THROW(fresh.attack_category(0, 1, "fgsm", 8.0f),
               std::logic_error);
}

TEST(ExperimentIntegration, FullGridProducesAllCells) {
  core::ExperimentConfig cfg;
  cfg.pipeline = micro_config();
  cfg.eps_grid_255 = {4.0f, 16.0f};  // reduced grid keeps the test fast
  const auto results = core::run_dataset_experiment(cfg);

  // 2 models x 2 scenarios x 2 attacks x 2 eps = 16 cells.
  EXPECT_EQ(results.cells.size(), 16u);
  EXPECT_EQ(results.dataset, "Amazon Men");
  EXPECT_GT(results.vbpr_auc, 0.55);
  EXPECT_GT(results.amr_auc, 0.55);
  EXPECT_EQ(results.vbpr_baseline_chr.size(), 16u);

  for (const auto& cell : results.cells) {
    EXPECT_GE(cell.success_rate, 0.0);
    EXPECT_LE(cell.success_rate, 1.0);
    EXPECT_GT(cell.psnr, 20.0);
    EXPECT_GT(cell.ssim, 0.5);
    EXPECT_GE(cell.psm, 0.0);
    EXPECT_GE(cell.chr_after_source, 0.0);
    EXPECT_LE(cell.chr_after_source, 1.0);
  }

  // Fig. 2 example filled in.
  EXPECT_GE(results.fig2.item, 0);
  EXPECT_GT(results.fig2.target_prob_after, 0.0);

  // Results (de)serialization roundtrip.
  const std::string path =
      (std::filesystem::temp_directory_path() / "taamr_results_test.bin").string();
  core::save_results(path, results);
  const auto restored = core::load_results(path);
  EXPECT_EQ(restored.cells.size(), results.cells.size());
  EXPECT_EQ(restored.dataset, results.dataset);
  EXPECT_NEAR(restored.vbpr_auc, results.vbpr_auc, 1e-5);
  EXPECT_NEAR(restored.cells[3].chr_after_source, results.cells[3].chr_after_source,
              1e-5);
  EXPECT_EQ(restored.fig2.item, results.fig2.item);
  std::remove(path.c_str());

  // Report rendering over real results.
  EXPECT_GT(core::table2_chr(results).num_rows(), 4u);
  EXPECT_GT(core::table3_success(results).num_rows(), 2u);
  EXPECT_GT(core::table4_visual(results).num_rows(), 3u);
  EXPECT_FALSE(core::fig2_text(results).empty());
}

}  // namespace
}  // namespace taamr
