#include "core/experiment.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "data/categories.hpp"
#include "metrics/chr.hpp"
#include "metrics/ranking.hpp"
#include "metrics/success.hpp"
#include "recsys/ranker.hpp"
#include "recsys/trainer.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"

namespace taamr::core {

namespace {

// Attacked images and their model-independent metrics, computed once per
// (source, target, attack, eps) and reused across VBPR and AMR.
struct AttackProducts {
  Pipeline::AttackedBatch batch;
  metrics::SuccessStats success;
  metrics::VisualQuality visual;
  Tensor merged_features;  // clean catalog features with attacked rows
};

struct AttackKey {
  std::int32_t source;
  std::int32_t target;
  std::string attack;
  float eps;
  bool operator<(const AttackKey& o) const {
    return std::tie(source, target, attack, eps) <
           std::tie(o.source, o.target, o.attack, o.eps);
  }
};

Fig2Example make_fig2_example(Pipeline& pipeline, recsys::Vbpr& vbpr,
                              const AttackScenario& scenario,
                              const AttackProducts& products, std::int64_t top_n) {
  (void)top_n;
  Fig2Example ex;
  ex.source_category = scenario.source_category;
  ex.target_category = scenario.target_category;

  const auto& dataset = pipeline.dataset();
  const std::int64_t num_items = dataset.num_items;
  const std::int64_t sample_users = std::min<std::int64_t>(dataset.num_users, 60);
  const std::int64_t num_attacked = static_cast<std::int64_t>(products.batch.items.size());

  // Median recommendation position of every attacked item across a user
  // sample, before and after the attack (one score_all pass per user and
  // state; ranks by counting strictly-better scores).
  std::vector<std::vector<double>> ranks_before(static_cast<std::size_t>(num_attacked));
  std::vector<std::vector<double>> ranks_after(static_cast<std::size_t>(num_attacked));
  std::vector<float> scores(static_cast<std::size_t>(num_items));
  auto collect = [&](std::vector<std::vector<double>>& out) {
    for (std::int64_t u = 0; u < sample_users; ++u) {
      vbpr.score_all(u, scores);
      for (std::int64_t a = 0; a < num_attacked; ++a) {
        const std::int32_t item = products.batch.items[static_cast<std::size_t>(a)];
        if (dataset.user_interacted(u, item)) continue;
        const float s = scores[static_cast<std::size_t>(item)];
        std::int64_t rank = 1;
        for (std::int64_t i = 0; i < num_items; ++i) {
          if (scores[static_cast<std::size_t>(i)] > s) ++rank;
        }
        out[static_cast<std::size_t>(a)].push_back(static_cast<double>(rank));
      }
    }
  };
  collect(ranks_before);
  vbpr.set_item_features(products.merged_features);
  collect(ranks_after);
  vbpr.set_item_features(pipeline.clean_features());

  auto median = [](std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };

  // Showcase the successfully-flipped item whose recommendation position
  // improved the most (the paper's Fig. 2 is exactly such an example).
  const Tensor probs_after =
      pipeline.classifier().probabilities(products.batch.attacked_images);
  const auto pred_after = pipeline.classifier().predict(products.batch.attacked_images);
  std::int64_t best = 0;
  double best_gain = -1e18;
  for (std::int64_t i = 0; i < num_attacked; ++i) {
    const double gain = median(ranks_before[static_cast<std::size_t>(i)]) -
                        median(ranks_after[static_cast<std::size_t>(i)]);
    const bool flipped = pred_after[static_cast<std::size_t>(i)] ==
                         static_cast<std::int64_t>(scenario.target_category);
    if ((flipped || best_gain == -1e18) && gain > best_gain) {
      best = i;
      best_gain = gain;
    }
  }
  ex.item = products.batch.items[static_cast<std::size_t>(best)];
  ex.median_rank_before = median(ranks_before[static_cast<std::size_t>(best)]);
  ex.median_rank_after = median(ranks_after[static_cast<std::size_t>(best)]);
  const Tensor probs_before =
      pipeline.classifier().probabilities(products.batch.clean_images);
  ex.source_prob_before = probs_before.at(best, scenario.source_category);
  ex.target_prob_after = probs_after.at(best, scenario.target_category);

  const std::int64_t elems = products.batch.clean_images.numel() /
                             products.batch.clean_images.dim(0);
  const Shape img_shape = {products.batch.clean_images.dim(1),
                           products.batch.clean_images.dim(2),
                           products.batch.clean_images.dim(3)};
  Tensor clean(img_shape), attacked(img_shape);
  std::copy(products.batch.clean_images.data() + best * elems,
            products.batch.clean_images.data() + (best + 1) * elems, clean.data());
  std::copy(products.batch.attacked_images.data() + best * elems,
            products.batch.attacked_images.data() + (best + 1) * elems, attacked.data());
  ex.psnr = metrics::psnr(clean, attacked);
  ex.ssim = metrics::ssim(clean, attacked);

  return ex;
}

}  // namespace

DatasetResults run_dataset_experiment(const ExperimentConfig& config) {
  Pipeline pipeline(config.pipeline);
  pipeline.prepare();
  const auto& dataset = pipeline.dataset();
  const std::int64_t top_n = config.pipeline.top_n;

  DatasetResults results;
  results.dataset = dataset.name;
  results.scale = config.pipeline.scale;
  results.top_n = top_n;
  results.classifier_accuracy = pipeline.classifier_accuracy();
  results.stats = data::compute_stats(dataset);

  auto vbpr = pipeline.train_vbpr();
  auto amr = pipeline.train_amr();

  Rng eval_rng(config.pipeline.seed ^ 0xe7a1);
  results.vbpr_auc = recsys::sampled_auc(*vbpr, dataset, eval_rng);
  results.amr_auc = recsys::sampled_auc(*amr, dataset, eval_rng);

  const auto vbpr_lists = recsys::top_n_lists(*vbpr, dataset, top_n);
  const auto amr_lists = recsys::top_n_lists(*amr, dataset, top_n);
  results.vbpr_hr = metrics::hit_ratio_at_n(vbpr_lists, dataset);
  results.amr_hr = metrics::hit_ratio_at_n(amr_lists, dataset);
  results.vbpr_baseline_chr = metrics::category_hit_ratio_all(vbpr_lists, dataset, top_n);
  results.amr_baseline_chr = metrics::category_hit_ratio_all(amr_lists, dataset, top_n);
  log_info() << "baselines ready: VBPR AUC=" << results.vbpr_auc
             << " AMR AUC=" << results.amr_auc;

  // Attacked images are model-independent: compute each (source, target,
  // attack, eps) once and evaluate both recommenders against it.
  std::map<AttackKey, AttackProducts> attack_cache;
  auto get_products = [&](const AttackScenario& s, const std::string& attack_key,
                          float eps) -> AttackProducts& {
    const AttackKey key{s.source_category, s.target_category, attack_key, eps};
    auto it = attack_cache.find(key);
    if (it != attack_cache.end()) return it->second;
    AttackProducts products;
    products.batch = pipeline.attack_category(s.source_category, s.target_category,
                                              attack_key, eps);
    products.success = metrics::attack_success(
        pipeline.classifier(), products.batch.attacked_images, s.target_category,
        attack::display_name(attack_key));
    products.visual = metrics::average_visual_quality(
        pipeline.classifier(), products.batch.clean_images,
        products.batch.attacked_images);
    products.merged_features =
        pipeline.features_with_attack(products.batch.items, products.batch.attacked_images);
    return attack_cache.emplace(key, std::move(products)).first->second;
  };

  struct ModelEntry {
    recsys::Vbpr* model;
    const std::vector<double>* baseline_chr;
  };
  const std::vector<std::pair<std::string, ModelEntry>> models = {
      {"VBPR", {vbpr.get(), &results.vbpr_baseline_chr}},
      {"AMR", {amr.get(), &results.amr_baseline_chr}},
  };

  for (const auto& [model_name, entry] : models) {
    const auto scenarios = paper_scenarios(dataset.name, model_name);
    for (const AttackScenario& scenario : scenarios) {
      for (const std::string& attack_key : config.attacks) {
        for (float eps : config.eps_grid_255) {
          AttackProducts& products = get_products(scenario, attack_key, eps);

          entry.model->set_item_features(products.merged_features);
          const auto lists = recsys::top_n_lists(*entry.model, dataset, top_n);
          entry.model->set_item_features(pipeline.clean_features());

          CellResult cell;
          cell.model = model_name;
          cell.attack = attack::display_name(attack_key);
          cell.source_category = scenario.source_category;
          cell.target_category = scenario.target_category;
          cell.semantically_similar = scenario.semantically_similar;
          cell.eps_255 = eps;
          cell.chr_before_source =
              (*entry.baseline_chr)[static_cast<std::size_t>(scenario.source_category)];
          cell.chr_before_target =
              (*entry.baseline_chr)[static_cast<std::size_t>(scenario.target_category)];
          cell.chr_after_source =
              metrics::category_hit_ratio(lists, dataset, scenario.source_category, top_n);
          cell.success_rate = products.success.success_rate;
          cell.mean_target_prob = products.success.mean_target_prob;
          cell.psnr = products.visual.psnr;
          cell.ssim = products.visual.ssim;
          cell.psm = products.visual.psm;
          results.cells.push_back(cell);
          log_info() << dataset.name << " " << model_name << " " << cell.attack
                     << " eps=" << eps << " " << scenario.label()
                     << ": CHR " << cell.chr_before_source << " -> "
                     << cell.chr_after_source << " (success " << cell.success_rate << ")";
        }
      }
    }
  }

  // Fig. 2: PGD eps=8 against VBPR on the similar scenario (as in the paper).
  const auto vbpr_scenarios = paper_scenarios(dataset.name, "VBPR");
  AttackProducts& fig2_products =
      get_products(vbpr_scenarios.front(), "pgd", 8.0f);
  results.fig2 =
      make_fig2_example(pipeline, *vbpr, vbpr_scenarios.front(), fig2_products, top_n);

  return results;
}

// ---- (de)serialization ------------------------------------------------------

namespace {
constexpr std::uint32_t kResultsMagic = 0x54414d52;  // "TAMR"
constexpr std::uint32_t kResultsVersion = 2;

void write_cell(std::ostream& os, const CellResult& c) {
  io::write_string(os, c.model);
  io::write_string(os, c.attack);
  io::write_u64(os, static_cast<std::uint64_t>(c.source_category));
  io::write_u64(os, static_cast<std::uint64_t>(c.target_category));
  io::write_u32(os, c.semantically_similar ? 1 : 0);
  io::write_f32(os, c.eps_255);
  for (double v : {c.chr_before_source, c.chr_before_target, c.chr_after_source,
                   c.success_rate, c.mean_target_prob, c.psnr, c.ssim, c.psm}) {
    io::write_f32(os, static_cast<float>(v));
  }
}

CellResult read_cell(std::istream& is) {
  CellResult c;
  c.model = io::read_string(is);
  c.attack = io::read_string(is);
  c.source_category = static_cast<std::int32_t>(io::read_u64(is));
  c.target_category = static_cast<std::int32_t>(io::read_u64(is));
  c.semantically_similar = io::read_u32(is) != 0;
  c.eps_255 = io::read_f32(is);
  c.chr_before_source = io::read_f32(is);
  c.chr_before_target = io::read_f32(is);
  c.chr_after_source = io::read_f32(is);
  c.success_rate = io::read_f32(is);
  c.mean_target_prob = io::read_f32(is);
  c.psnr = io::read_f32(is);
  c.ssim = io::read_f32(is);
  c.psm = io::read_f32(is);
  return c;
}

std::vector<float> doubles_to_floats(const std::vector<double>& v) {
  return std::vector<float>(v.begin(), v.end());
}
std::vector<double> floats_to_doubles(const std::vector<float>& v) {
  return std::vector<double>(v.begin(), v.end());
}
}  // namespace

void save_results(const std::string& path, const DatasetResults& r) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_results: cannot open " + path);
  io::write_magic(os, kResultsMagic, kResultsVersion);
  io::write_string(os, r.dataset);
  io::write_f32(os, static_cast<float>(r.scale));
  io::write_u64(os, static_cast<std::uint64_t>(r.top_n));
  io::write_f32(os, static_cast<float>(r.classifier_accuracy));
  io::write_u64(os, static_cast<std::uint64_t>(r.stats.num_users));
  io::write_u64(os, static_cast<std::uint64_t>(r.stats.num_items));
  io::write_u64(os, static_cast<std::uint64_t>(r.stats.num_feedback));
  io::write_i64_vector(os, r.stats.items_per_category);
  io::write_i64_vector(os, r.stats.feedback_per_category);
  io::write_f32(os, static_cast<float>(r.vbpr_auc));
  io::write_f32(os, static_cast<float>(r.amr_auc));
  io::write_f32(os, static_cast<float>(r.vbpr_hr));
  io::write_f32(os, static_cast<float>(r.amr_hr));
  io::write_f32_vector(os, doubles_to_floats(r.vbpr_baseline_chr));
  io::write_f32_vector(os, doubles_to_floats(r.amr_baseline_chr));
  io::write_u64(os, r.cells.size());
  for (const CellResult& c : r.cells) write_cell(os, c);
  io::write_u64(os, static_cast<std::uint64_t>(r.fig2.item));
  io::write_u64(os, static_cast<std::uint64_t>(r.fig2.source_category));
  io::write_u64(os, static_cast<std::uint64_t>(r.fig2.target_category));
  for (double v : {r.fig2.source_prob_before, r.fig2.target_prob_after,
                   r.fig2.median_rank_before, r.fig2.median_rank_after, r.fig2.psnr,
                   r.fig2.ssim}) {
    io::write_f32(os, static_cast<float>(v));
  }
}

DatasetResults load_results(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_results: cannot open " + path);
  const std::uint32_t version = io::read_magic(is, kResultsMagic);
  if (version != kResultsVersion) {
    throw std::runtime_error("load_results: unsupported version");
  }
  DatasetResults r;
  r.dataset = io::read_string(is);
  r.scale = io::read_f32(is);
  r.top_n = static_cast<std::int64_t>(io::read_u64(is));
  r.classifier_accuracy = io::read_f32(is);
  r.stats.num_users = static_cast<std::int64_t>(io::read_u64(is));
  r.stats.num_items = static_cast<std::int64_t>(io::read_u64(is));
  r.stats.num_feedback = static_cast<std::int64_t>(io::read_u64(is));
  r.stats.items_per_category = io::read_i64_vector(is);
  r.stats.feedback_per_category = io::read_i64_vector(is);
  if (r.stats.num_users > 0 && r.stats.num_items > 0) {
    r.stats.density = static_cast<double>(r.stats.num_feedback) /
                      (static_cast<double>(r.stats.num_users) *
                       static_cast<double>(r.stats.num_items));
    r.stats.mean_interactions_per_user = static_cast<double>(r.stats.num_feedback) /
                                         static_cast<double>(r.stats.num_users);
  }
  r.vbpr_auc = io::read_f32(is);
  r.amr_auc = io::read_f32(is);
  r.vbpr_hr = io::read_f32(is);
  r.amr_hr = io::read_f32(is);
  r.vbpr_baseline_chr = floats_to_doubles(io::read_f32_vector(is));
  r.amr_baseline_chr = floats_to_doubles(io::read_f32_vector(is));
  const std::uint64_t n = io::read_u64(is);
  r.cells.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) r.cells.push_back(read_cell(is));
  r.fig2.item = static_cast<std::int32_t>(io::read_u64(is));
  r.fig2.source_category = static_cast<std::int32_t>(io::read_u64(is));
  r.fig2.target_category = static_cast<std::int32_t>(io::read_u64(is));
  r.fig2.source_prob_before = io::read_f32(is);
  r.fig2.target_prob_after = io::read_f32(is);
  r.fig2.median_rank_before = io::read_f32(is);
  r.fig2.median_rank_after = io::read_f32(is);
  r.fig2.psnr = io::read_f32(is);
  r.fig2.ssim = io::read_f32(is);
  return r;
}

DatasetResults run_or_load_experiment(const ExperimentConfig& config,
                                      const std::string& cache_dir) {
  std::string path;
  if (!cache_dir.empty()) {
    std::ostringstream key;
    key << "results_" << (config.pipeline.dataset_name == "Amazon Men" ? "men" : "women")
        << "_s" << config.pipeline.scale << "_seed" << config.pipeline.seed << "_n"
        << config.pipeline.top_n << "_v" << kResultsVersion << ".bin";
    std::filesystem::create_directories(cache_dir);
    path = (std::filesystem::path(cache_dir) / key.str()).string();
    if (std::filesystem::exists(path)) {
      log_info() << "loading cached experiment results from " << path;
      return load_results(path);
    }
  }
  DatasetResults results = run_dataset_experiment(config);
  if (!path.empty()) {
    save_results(path, results);
    log_info() << "saved experiment results to " << path;
  }
  return results;
}

}  // namespace taamr::core
