// Scoped trace spans in Chrome trace_event format.
//
//   void Pipeline::prepare() {
//     TAAMR_TRACE_SPAN("pipeline/prepare");
//     ...
//   }
//
// When TAAMR_TRACE=<path> is set in the environment, every span becomes a
// complete ("ph":"X") event; per-thread buffers are merged and written to
// <path> at process exit (or via Trace::write()). Open the file in
// chrome://tracing or https://ui.perfetto.dev. When tracing is disabled a
// span costs one relaxed atomic load — cheap enough to leave in hot paths.
//
// Nesting falls out of scoping: spans on the same thread whose lifetimes
// nest render as a flame graph.
//
// Flow events ("ph":"s" start / "ph":"f" finish, matched by "id") draw
// arrows across threads. The serving path uses them to link each coalesced
// follower request to its batch leader's scoring span: the follower emits a
// flow start where it parks, the leader emits the matching finish inside
// serve/score_batch, and tools/trace_summary walks those arrows to
// attribute critical-path time per request.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace taamr::obs {

// Microseconds since the first call in this process; the shared time axis
// for trace events and queue-latency measurements.
std::uint64_t monotonic_us();

class Trace {
 public:
  // Process-wide session. Reads TAAMR_TRACE at construction; writes the
  // merged trace there at destruction (normal process exit).
  static Trace& global();

  Trace();
  ~Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Start collecting; events are written to `path` (empty = collect only,
  // retrieve with to_json()). Used by tests; normal runs use TAAMR_TRACE.
  void enable(std::string path);
  void disable();
  // The configured output path (empty = collect only). Lets a driver that
  // toggles tracing off for a phase re-enable it at the same destination.
  std::string path() const;
  // Drops all buffered events (the per-thread buffers stay registered).
  void clear();

  // Records one complete event on the calling thread's buffer.
  void record(std::string name, std::uint64_t ts_us, std::uint64_t dur_us);
  // Records a flow start (`start` = true) or finish event; events with the
  // same id are drawn as one arrow. Instantaneous, so no duration.
  void record_flow(std::string name, std::uint64_t id, bool start);

  // Merges every thread's buffer into one trace_event JSON document.
  std::string to_json() const;
  // Writes to_json() to the configured path (no-op when path is empty).
  void write();

 private:
  struct Event {
    std::string name;
    std::uint64_t ts_us = 0;
    std::uint64_t dur_us = 0;   // complete events only
    char ph = 'X';              // 'X' complete, 's'/'f' flow start/finish
    std::uint64_t flow_id = 0;  // flow events only
  };
  struct ThreadBuf {
    mutable std::mutex mutex;  // appends race with to_json() merges
    std::vector<Event> events;
    int tid = 0;      // compact per-trace id used in the JSON
    long os_tid = 0;  // kernel tid, for thread-name lookup at merge time
  };

  ThreadBuf& local_buf();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  // guards path_ and bufs_ registration
  std::string path_;
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
};

// RAII span. The const char* overload defers any allocation until the span
// is actually recorded, so disabled-tracing overhead is one atomic load.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Trace::global().enabled()) begin(name);
  }
  explicit TraceSpan(std::string name) {
    if (Trace::global().enabled()) begin(std::move(name));
  }
  ~TraceSpan() {
    if (active_) {
      Trace::global().record(std::move(name_), start_us_,
                             monotonic_us() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(std::string name) {
    name_ = std::move(name);
    start_us_ = monotonic_us();
    active_ = true;
  }

  bool active_ = false;
  std::string name_;
  std::uint64_t start_us_ = 0;
};

}  // namespace taamr::obs

#define TAAMR_OBS_CONCAT_INNER(a, b) a##b
#define TAAMR_OBS_CONCAT(a, b) TAAMR_OBS_CONCAT_INNER(a, b)
// Opens a span covering the rest of the enclosing scope.
#define TAAMR_TRACE_SPAN(name) \
  ::taamr::obs::TraceSpan TAAMR_OBS_CONCAT(taamr_trace_span_, __COUNTER__)(name)
