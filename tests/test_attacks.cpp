#include <gtest/gtest.h>

#include "attack/attack.hpp"
#include "attack/fgsm.hpp"
#include "attack/pgd.hpp"
#include "metrics/success.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace taamr {
namespace {

nn::MiniResNetConfig tiny_config() {
  nn::MiniResNetConfig cfg;
  cfg.image_size = 8;
  cfg.base_width = 4;
  cfg.blocks_per_stage = 1;
  cfg.num_classes = 3;
  return cfg;
}

// A trained classifier on an easy 3-class brightness task; shared across
// tests because training even the tiny net takes a moment.
nn::Classifier& trained_classifier() {
  static nn::Classifier classifier = [] {
    Rng rng(131);
    nn::Classifier c(tiny_config(), rng);
    const std::int64_t n = 90;
    Tensor images({n, 3, 8, 8});
    std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t label = i % 3;
      labels[static_cast<std::size_t>(i)] = label;
      const float base = 0.2f + 0.3f * static_cast<float>(label);
      for (std::int64_t j = 0; j < 192; ++j) {
        images[i * 192 + j] = base + rng.gaussian_f(0.0f, 0.05f);
      }
    }
    nn::SgdConfig sgd;
    sgd.learning_rate = 0.05f;
    c.fit(images, labels, 6, 16, sgd, rng, false);
    return c;
  }();
  return classifier;
}

Tensor class_images(std::int64_t label, std::int64_t n, Rng& rng) {
  Tensor images({n, 3, 8, 8});
  const float base = 0.2f + 0.3f * static_cast<float>(label);
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    images[i] = std::clamp(base + rng.gaussian_f(0.0f, 0.05f), 0.0f, 1.0f);
  }
  return images;
}

TEST(AttackConfig, Validation) {
  attack::AttackConfig cfg;
  cfg.epsilon = 0.0f;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.clip_min = 1.0f;
  cfg.clip_max = 0.0f;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.iterations = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(AttackConfig, EffectiveStepDefaultsToMadrySchedule) {
  attack::AttackConfig cfg;
  cfg.epsilon = 0.1f;
  cfg.iterations = 10;
  EXPECT_NEAR(cfg.effective_step(), 0.025f, 1e-6f);
  cfg.step_size = 0.007f;
  EXPECT_NEAR(cfg.effective_step(), 0.007f, 1e-9f);
}

TEST(AttackConfig, EpsilonFrom255) {
  EXPECT_NEAR(attack::epsilon_from_255(8.0f), 8.0f / 255.0f, 1e-9f);
}

TEST(AttackFactory, CreatesRegisteredAttacks) {
  attack::AttackConfig cfg;
  EXPECT_EQ(attack::make("fgsm", cfg)->name(), "FGSM");
  EXPECT_EQ(attack::make("pgd", cfg)->name(), "PGD");
  EXPECT_EQ(attack::display_name("fgsm"), "FGSM");
  EXPECT_EQ(attack::display_name("pgd"), "PGD");
}

class AttackInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, float>> {};

TEST_P(AttackInvariants, LinfBoundAndPixelRangeHold) {
  const auto [key, eps255] = GetParam();
  nn::Classifier& c = trained_classifier();
  Rng rng(132);
  const Tensor clean = class_images(0, 4, rng);
  attack::AttackConfig cfg;
  cfg.epsilon = attack::epsilon_from_255(eps255);
  auto attacker = attack::make(key, cfg);
  const std::vector<std::int64_t> targets(4, 2);
  Rng arng(133);
  const Tensor adv = attacker->perturb(c, clean, targets, arng);
  ASSERT_EQ(adv.shape(), clean.shape());
  EXPECT_LE(ops::linf_distance(adv, clean), cfg.epsilon + 1e-5f);
  EXPECT_GE(ops::min(adv), 0.0f);
  EXPECT_LE(ops::max(adv), 1.0f);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndBudgets, AttackInvariants,
    ::testing::Combine(::testing::Values(std::string("fgsm"),
                                         std::string("pgd")),
                       ::testing::Values(2.0f, 4.0f, 8.0f, 16.0f)));

TEST(Fgsm, TargetedAttackLowersTargetLoss) {
  nn::Classifier& c = trained_classifier();
  Rng rng(134);
  const Tensor clean = class_images(0, 6, rng);
  const std::vector<std::int64_t> targets(6, 2);
  float loss_before = 0.0f, loss_after = 0.0f;
  c.loss_input_gradient(clean, targets, &loss_before);
  attack::AttackConfig cfg;
  cfg.epsilon = attack::epsilon_from_255(16.0f);
  attack::Fgsm fgsm(cfg);
  Rng arng(135);
  const Tensor adv = fgsm.perturb(c, clean, targets, arng);
  c.loss_input_gradient(adv, targets, &loss_after);
  EXPECT_LT(loss_after, loss_before);
}

TEST(Fgsm, UntargetedAttackRaisesTrueLoss) {
  nn::Classifier& c = trained_classifier();
  Rng rng(136);
  const Tensor clean = class_images(1, 6, rng);
  const std::vector<std::int64_t> truth(6, 1);
  float loss_before = 0.0f, loss_after = 0.0f;
  c.loss_input_gradient(clean, truth, &loss_before);
  attack::AttackConfig cfg;
  cfg.epsilon = attack::epsilon_from_255(16.0f);
  cfg.targeted = false;
  attack::Fgsm fgsm(cfg);
  Rng arng(137);
  const Tensor adv = fgsm.perturb(c, clean, truth, arng);
  c.loss_input_gradient(adv, truth, &loss_after);
  EXPECT_GT(loss_after, loss_before);
}

TEST(Pgd, BeatsFgsmOnTargetedSuccess) {
  // The brightness toy task is robust by construction (the class signal is
  // the image mean, and an l_inf ball moves the mean by at most eps), so
  // this relative-strength check targets the adjacent class with a budget
  // that can reach the decision boundary.
  nn::Classifier& c = trained_classifier();
  Rng rng(138);
  const Tensor clean = class_images(0, 12, rng);
  const std::vector<std::int64_t> targets(12, 1);
  attack::AttackConfig cfg;
  cfg.epsilon = attack::epsilon_from_255(48.0f);

  attack::Fgsm fgsm(cfg);
  attack::Pgd pgd(cfg);
  Rng r1(139), r2(140);
  const Tensor adv_fgsm = fgsm.perturb(c, clean, targets, r1);
  const Tensor adv_pgd = pgd.perturb(c, clean, targets, r2);
  const double s_fgsm = metrics::attack_success(c, adv_fgsm, 1).success_rate;
  const double s_pgd = metrics::attack_success(c, adv_pgd, 1).success_rate;
  EXPECT_GE(s_pgd, s_fgsm);
  EXPECT_GT(s_pgd, 0.5);  // 10-step PGD with a boundary-reaching budget
}

TEST(Pgd, TargetedSuccessGrowsWithEpsilon) {
  nn::Classifier& c = trained_classifier();
  Rng rng(141);
  const Tensor clean = class_images(0, 10, rng);
  const std::vector<std::int64_t> targets(10, 2);
  double low_eps_rate, high_eps_rate;
  {
    attack::AttackConfig cfg;
    cfg.epsilon = attack::epsilon_from_255(1.0f);
    attack::Pgd pgd(cfg);
    Rng arng(142);
    low_eps_rate =
        metrics::attack_success(c, pgd.perturb(c, clean, targets, arng), 2).success_rate;
  }
  {
    attack::AttackConfig cfg;
    cfg.epsilon = attack::epsilon_from_255(16.0f);
    attack::Pgd pgd(cfg);
    Rng arng(143);
    high_eps_rate =
        metrics::attack_success(c, pgd.perturb(c, clean, targets, arng), 2).success_rate;
  }
  EXPECT_GE(high_eps_rate, low_eps_rate);
}

TEST(Pgd, RandomStartChangesResultDeterministically) {
  nn::Classifier& c = trained_classifier();
  Rng rng(144);
  const Tensor clean = class_images(0, 2, rng);
  const std::vector<std::int64_t> targets(2, 1);
  attack::AttackConfig cfg;
  cfg.epsilon = attack::epsilon_from_255(8.0f);
  attack::Pgd pgd(cfg);
  Rng r1(7), r2(7), r3(8);
  const Tensor a = pgd.perturb(c, clean, targets, r1);
  const Tensor b = pgd.perturb(c, clean, targets, r2);
  const Tensor d = pgd.perturb(c, clean, targets, r3);
  EXPECT_EQ(ops::linf_distance(a, b), 0.0f);  // same rng -> identical
  EXPECT_GT(ops::linf_distance(a, d), 0.0f);  // different rng -> different start
}

TEST(Pgd, NoRandomStartIsBim) {
  nn::Classifier& c = trained_classifier();
  Rng rng(145);
  const Tensor clean = class_images(0, 2, rng);
  const std::vector<std::int64_t> targets(2, 2);
  attack::AttackConfig cfg;
  cfg.epsilon = attack::epsilon_from_255(8.0f);
  cfg.random_start = false;
  attack::Pgd bim(cfg);
  Rng r1(1), r2(99);
  // Without random start the rng is unused: results are rng-independent.
  const Tensor a = bim.perturb(c, clean, targets, r1);
  const Tensor b = bim.perturb(c, clean, targets, r2);
  EXPECT_EQ(ops::linf_distance(a, b), 0.0f);
}

TEST(Pgd, MoreIterationsDoNotHurtLoss) {
  nn::Classifier& c = trained_classifier();
  Rng rng(146);
  const Tensor clean = class_images(0, 6, rng);
  const std::vector<std::int64_t> targets(6, 2);
  auto target_loss_after = [&](std::int64_t iters) {
    attack::AttackConfig cfg;
    cfg.epsilon = attack::epsilon_from_255(8.0f);
    cfg.iterations = iters;
    cfg.random_start = false;
    attack::Pgd pgd(cfg);
    Rng arng(147);
    const Tensor adv = pgd.perturb(c, clean, targets, arng);
    float loss = 0.0f;
    c.loss_input_gradient(adv, targets, &loss);
    return loss;
  };
  EXPECT_LE(target_loss_after(10), target_loss_after(1) + 0.05f);
}

}  // namespace
}  // namespace taamr
