#include "recsys/bpr_mf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/io.hpp"

#include "obs/metrics.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace taamr::recsys {

namespace {
inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}

BprMf::BprMf(const data::ImplicitDataset& dataset, BprMfConfig config, Rng& rng)
    : config_(config),
      user_factors_({dataset.num_users, config.factors}),
      item_factors_({dataset.num_items, config.factors}),
      item_bias_({dataset.num_items}),
      sampler_(dataset) {
  for (float& v : user_factors_.storage()) v = rng.gaussian_f(0.0f, config.init_stddev);
  for (float& v : item_factors_.storage()) v = rng.gaussian_f(0.0f, config.init_stddev);
}

float BprMf::score(std::int64_t user, std::int32_t item) const {
  const std::int64_t k = config_.factors;
  const float* p = user_factors_.data() + user * k;
  const float* q = item_factors_.data() + item * k;
  float s = item_bias_[item];
  for (std::int64_t f = 0; f < k; ++f) s += p[f] * q[f];
  return s;
}

void BprMf::score_all(std::int64_t user, std::span<float> out) const {
  if (static_cast<std::int64_t>(out.size()) != num_items()) {
    throw std::invalid_argument("BprMf::score_all: bad output size");
  }
  for (std::int64_t i = 0; i < num_items(); ++i) {
    out[static_cast<std::size_t>(i)] = score(user, static_cast<std::int32_t>(i));
  }
}

float BprMf::train_epoch(const data::ImplicitDataset& dataset, Rng& rng) {
  const std::int64_t steps = dataset.num_train_feedback();
  const std::int64_t k = config_.factors;
  const float lr = config_.learning_rate;
  const float reg = config_.reg_factors;
  const float reg_b = config_.reg_bias;
  double loss_sum = 0.0;
  double grad_sum = 0.0;

  for (std::int64_t step = 0; step < steps; ++step) {
    const Triplet t = sampler_.sample(rng);
    float* p = user_factors_.data() + t.user * k;
    float* qi = item_factors_.data() + t.pos_item * k;
    float* qj = item_factors_.data() + t.neg_item * k;

    float x = item_bias_[t.pos_item] - item_bias_[t.neg_item];
    for (std::int64_t f = 0; f < k; ++f) x += p[f] * (qi[f] - qj[f]);
    const float g = sigmoid(-x);  // d(-ln sigma(x))/dx = -sigma(-x)
    loss_sum += -std::log(std::max(sigmoid(x), 1e-12f));
    grad_sum += g;

    for (std::int64_t f = 0; f < k; ++f) {
      const float pu = p[f], qif = qi[f], qjf = qj[f];
      p[f] += lr * (g * (qif - qjf) - reg * pu);
      qi[f] += lr * (g * pu - reg * qif);
      qj[f] += lr * (-g * pu - reg * qjf);
    }
    item_bias_[t.pos_item] += lr * (g - reg_b * item_bias_[t.pos_item]);
    item_bias_[t.neg_item] += lr * (-g - reg_b * item_bias_[t.neg_item]);
  }
  last_epoch_mean_grad_ = grad_sum / static_cast<double>(steps);
  return static_cast<float>(loss_sum / static_cast<double>(steps));
}

namespace {
constexpr std::uint32_t kBprMagic = 0x54414d42;  // "TAMB"
constexpr std::uint32_t kBprVersion = 1;

void write_tensor(std::ostream& os, const Tensor& t) {
  io::write_i64_vector(os, t.shape());
  io::write_f32_vector(os, t.storage());
}

Tensor read_tensor(std::istream& is) {
  const auto shape = io::read_i64_vector(is);
  auto data = io::read_f32_vector(is);
  if (shape_numel(shape) != static_cast<std::int64_t>(data.size())) {
    throw std::runtime_error("BprMf::load: tensor shape/payload mismatch");
  }
  return Tensor(Shape(shape), std::move(data));
}
}  // namespace

BprMf::BprMf(const data::ImplicitDataset& dataset, BprMfConfig config, LoadTag)
    : config_(config), sampler_(dataset) {}

void BprMf::save(std::ostream& os) const {
  io::write_magic(os, kBprMagic, kBprVersion);
  io::write_u64(os, static_cast<std::uint64_t>(config_.factors));
  io::write_f32(os, config_.learning_rate);
  io::write_f32(os, config_.reg_factors);
  io::write_f32(os, config_.reg_bias);
  for (const Tensor* t : {&user_factors_, &item_factors_, &item_bias_}) {
    write_tensor(os, *t);
  }
}

BprMf BprMf::load(std::istream& is, const data::ImplicitDataset& dataset) {
  try {
    const std::uint32_t version = io::read_magic(is, kBprMagic);
    if (version != kBprVersion) {
      throw std::runtime_error("BprMf::load: unsupported version " +
                               std::to_string(version));
    }
    BprMfConfig config;
    config.factors = static_cast<std::int64_t>(io::read_u64(is));
    config.learning_rate = io::read_f32(is);
    config.reg_factors = io::read_f32(is);
    config.reg_bias = io::read_f32(is);
    BprMf model(dataset, config, LoadTag{});
    for (Tensor* t : {&model.user_factors_, &model.item_factors_, &model.item_bias_}) {
      *t = read_tensor(is);
    }
    if (model.user_factors_.ndim() != 2 ||
        model.user_factors_.dim(0) != dataset.num_users ||
        model.item_factors_.ndim() != 2 ||
        model.item_factors_.dim(0) != dataset.num_items ||
        model.item_factors_.dim(1) != config.factors ||
        model.item_bias_.numel() != dataset.num_items) {
      throw std::runtime_error("BprMf::load: checkpoint does not match the dataset");
    }
    return model;
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    if (what.rfind("BprMf::load", 0) == 0) throw;
    throw std::runtime_error("BprMf::load: corrupt or truncated checkpoint (" + what + ")");
  }
}

void BprMf::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("BprMf::save_file: cannot open " + path);
  save(os);
}

BprMf BprMf::load_file(const std::string& path, const data::ImplicitDataset& dataset) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("BprMf::load_file: cannot open " + path);
  return load(is, dataset);
}

void BprMf::fit(const data::ImplicitDataset& dataset, Rng& rng, bool verbose) {
  auto& loss_hist = obs::MetricsRegistry::global().histogram(
      "bpr_mf_epoch_loss", {}, obs::exponential_bounds(1e-3, 2.0, 20));
  for (std::int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    TAAMR_TRACE_SPAN("recsys/bpr_mf/epoch");
    Stopwatch epoch_timer;
    const float loss = train_epoch(dataset, rng);
    loss_hist.observe(static_cast<double>(loss));
    obs::runlog("bpr_mf_epoch",
                {{"epoch", static_cast<double>(epoch + 1)},
                 {"loss", static_cast<double>(loss)},
                 {"mean_grad", last_epoch_mean_grad_},
                 {"examples_per_sec",
                  static_cast<double>(dataset.num_train_feedback()) /
                      std::max(epoch_timer.seconds(), 1e-9)}});
    if (verbose && (epoch + 1) % 20 == 0) {
      log_info() << "bpr-mf epoch " << (epoch + 1) << "/" << config_.epochs
                 << " loss=" << loss;
    }
  }
}

}  // namespace taamr::recsys
