#include "serve/shard_router.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace taamr::serve {

namespace {

std::int64_t env_int64(const char* name, std::int64_t fallback, std::int64_t min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || v < min_value) {
    std::fprintf(stderr, "serve: ignoring invalid %s=%s (using %lld)\n", name, raw,
                 static_cast<long long>(fallback));
    return fallback;
  }
  return static_cast<std::int64_t>(v);
}

}  // namespace

ShardRouterConfig ShardRouterConfig::from_env() {
  ShardRouterConfig c;
  c.num_shards = env_int64("TAAMR_SERVE_SHARDS", 0, 0);
  c.service = ServeConfig::from_env();
  return c;
}

ShardRouter::ShardRouter(const data::ImplicitDataset& dataset, ModelRegistry& registry,
                         Tensor raw_features, ShardRouterConfig config)
    : dataset_(dataset), registry_(registry), config_(config) {
  std::int64_t n = config_.num_shards;
  if (n == 0) {
    n = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::thread::hardware_concurrency()) / 2);
  }
  if (n < 1) throw std::invalid_argument("ShardRouter: num_shards must be >= 1");
  config_.num_shards = n;

  store_ = std::make_shared<FeatureStore>(
      std::move(raw_features),
      static_cast<std::size_t>(config_.service.update_log_window));
  auto update_mutex = std::make_shared<std::mutex>();

  // Split the total cache budget: every shard keeps at least one entry per
  // internal cache shard so the LRU slices stay functional at any N.
  ServeConfig per_shard = config_.service;
  per_shard.cache_capacity = std::max<std::int64_t>(
      per_shard.cache_shards, per_shard.cache_capacity / n);

  auto& metrics = obs::MetricsRegistry::global();
  shards_.reserve(static_cast<std::size_t>(n));
  shard_requests_.reserve(static_cast<std::size_t>(n));
  for (std::int64_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<RecommendService>(
        dataset_, registry_, store_, update_mutex, per_shard));
    shard_requests_.push_back(&metrics.counter(
        "serve_shard_requests_total", {{"shard", std::to_string(s)}}));
  }
  metrics.gauge("serve_shards").set(static_cast<double>(n));
}

std::size_t ShardRouter::shard_of(std::int64_t user) const {
  // splitmix64 finalizer: uncorrelated with the id's low bits, so
  // sequentially-issued user ids spread evenly instead of striping.
  std::uint64_t state = static_cast<std::uint64_t>(user);
  const std::uint64_t h = splitmix64(state);
  return static_cast<std::size_t>(h % shards_.size());
}

Recommendation ShardRouter::recommend(const std::string& model, std::int64_t user,
                                      std::int64_t n, obs::RequestContext* ctx) {
  if (user < 0 || user >= dataset_.num_users) {
    throw std::invalid_argument("recommend: user out of range");
  }
  const std::size_t s = shard_of(user);
  shard_requests_[s]->increment();
  return shards_[s]->recommend(model, user, n, ctx);
}

std::vector<Recommendation> ShardRouter::recommend_batch(
    const std::string& model, std::span<const std::int64_t> users, std::int64_t n) {
  for (const std::int64_t u : users) {
    if (u < 0 || u >= dataset_.num_users) {
      throw std::invalid_argument("recommend_batch: user out of range");
    }
  }
  // Scatter by shard, batch per shard, gather back into request order.
  std::vector<std::vector<std::int64_t>> by_shard(shards_.size());
  std::vector<std::vector<std::size_t>> positions(shards_.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    const std::size_t s = shard_of(users[i]);
    by_shard[s].push_back(users[i]);
    positions[s].push_back(i);
  }
  std::vector<Recommendation> results(users.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    shard_requests_[s]->add(static_cast<double>(by_shard[s].size()));
    std::vector<Recommendation> part =
        shards_[s]->recommend_batch(model, by_shard[s], n);
    for (std::size_t j = 0; j < part.size(); ++j) {
      results[positions[s][j]] = std::move(part[j]);
    }
  }
  return results;
}

std::uint64_t ShardRouter::update_item_features(std::int64_t item,
                                                std::span<const float> features) {
  return shards_[0]->update_item_features(item, features);
}

std::uint64_t ShardRouter::update_item_features(
    std::int64_t item, std::span<const float> features,
    const RecommendService::UpdateOrigin& origin) {
  return shards_[0]->update_item_features(item, features, origin);
}

void ShardRouter::clear_cache() {
  for (auto& shard : shards_) shard->clear_cache();
}

RecommendService::Stats ShardRouter::shard_stats(std::size_t shard) const {
  return shards_[shard]->stats();
}

RecommendService::Stats ShardRouter::stats() const {
  RecommendService::Stats total;
  for (const auto& shard : shards_) {
    const RecommendService::Stats st = shard->stats();
    total.requests += st.requests;
    total.cache_hits += st.cache_hits;
    total.cache_misses += st.cache_misses;
    total.cache_revalidated += st.cache_revalidated;
    total.coalesced_batches += st.coalesced_batches;
    total.feature_swaps += st.feature_swaps;
    total.slow_requests += st.slow_requests;
    total.deadline_breaches += st.deadline_breaches;
    total.suspect_updates += st.suspect_updates;
    total.rolling_window_requests += st.rolling_window_requests;
    // Worst shard defines the SLO story; averaging would hide a hot shard.
    total.rolling_p50_s = std::max(total.rolling_p50_s, st.rolling_p50_s);
    total.rolling_p90_s = std::max(total.rolling_p90_s, st.rolling_p90_s);
    total.rolling_p99_s = std::max(total.rolling_p99_s, st.rolling_p99_s);
    total.cache.evictions += st.cache.evictions;
    total.cache.size += st.cache.size;
    total.cache.capacity += st.cache.capacity;
    total.cache.shards += st.cache.shards;
  }
  // audit_records is a process-global counter, not per-shard; don't sum.
  total.audit_records = obs::AuditLog::global().records_written();
  return total;
}

std::string ShardRouter::metrics_text() const {
  auto& metrics = obs::MetricsRegistry::global();
  const RecommendService::Stats agg = stats();
  metrics.gauge("serve_rolling_p50_seconds").set(agg.rolling_p50_s);
  metrics.gauge("serve_rolling_p90_seconds").set(agg.rolling_p90_s);
  metrics.gauge("serve_rolling_p99_seconds").set(agg.rolling_p99_s);
  metrics.gauge("serve_rolling_window_requests")
      .set(static_cast<double>(agg.rolling_window_requests));
  return metrics.to_prometheus();
}

}  // namespace taamr::serve
