// Shared setup for the per-table bench binaries: one experiment
// configuration (the reproduction's "evaluation settings") and a disk
// cache so that table2/3/4/fig2 all reuse a single expensive run.
//
// Environment knobs:
//   TAAMR_SCALE        dataset scale factor   (default data::kBenchScale)
//   TAAMR_CACHE_DIR    cache directory        (default ./taamr_cache)
//   TAAMR_SEED         master seed            (default 42)
//   TAAMR_METRICS_OUT  metrics JSON path — every bench binary dumps the
//                      registry snapshot (per-stage wall-time counters,
//                      thread-pool gauges, epoch-loss histograms, the
//                      bench_results_seconds_total timing below) there at
//                      exit, next to its stdout table output
//   TAAMR_TRACE        Chrome trace-event JSON path (chrome://tracing)
//   TAAMR_RUN_LOG      per-epoch/per-attack-step JSONL log path
//   TAAMR_THREADS      global thread-pool size (default: hardware)
//   TAAMR_BENCH_DIR    directory for the BENCH_<name>.json artifact each
//                      bench binary writes via bench::Reporter (default ".")
//   TAAMR_PROFILE      sampling profiler (off|cpu|alloc|both); Reporter
//                      construction touches obs::Profiler::global() so a
//                      profiled bench covers the whole run and writes
//                      TAAMR_PROFILE_OUT-prefixed .folded artifacts at exit
//
// Malformed TAAMR_SCALE / TAAMR_SEED values are rejected with a warning
// and the default is used instead (they used to silently parse as 0, which
// produced empty datasets and degenerate runs).
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "core/experiment.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "obs/procstat.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "tensor/cost.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_name.hpp"
#include "util/thread_pool.hpp"

namespace taamr::bench {

inline double env_scale() {
  if (const char* s = std::getenv("TAAMR_SCALE")) {
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end != s && *end == '\0' && std::isfinite(v) && v > 0.0) return v;
    log_warn() << "ignoring malformed TAAMR_SCALE='" << s << "', using default "
               << data::kBenchScale;
  }
  return data::kBenchScale;
}

inline std::string env_cache_dir() {
  if (const char* s = std::getenv("TAAMR_CACHE_DIR")) return s;
  return "taamr_cache";
}

inline std::uint64_t env_seed() {
  if (const char* s = std::getenv("TAAMR_SEED")) {
    // strtoull accepts a leading '-' (wrapping) and partial prefixes;
    // require an all-digit string so typos fall back loudly.
    bool digits = s[0] != '\0';
    for (const char* p = s; *p != '\0'; ++p) {
      if (!std::isdigit(static_cast<unsigned char>(*p))) {
        digits = false;
        break;
      }
    }
    if (digits) {
      char* end = nullptr;
      const std::uint64_t v = std::strtoull(s, &end, 10);
      if (end != s && *end == '\0') return v;
    }
    log_warn() << "ignoring malformed TAAMR_SEED='" << s << "', using default 42";
  }
  return 42;
}

inline core::ExperimentConfig experiment_config(const std::string& dataset) {
  core::ExperimentConfig cfg;
  cfg.pipeline.dataset_name = dataset;
  cfg.pipeline.scale = env_scale();
  cfg.pipeline.seed = env_seed();
  cfg.pipeline.cache_dir = env_cache_dir();
  return cfg;
}

inline core::DatasetResults results_for(const std::string& dataset) {
  TAAMR_TRACE_SPAN("bench/results_for");
  Stopwatch timer;
  core::DatasetResults results =
      core::run_or_load_experiment(experiment_config(dataset), env_cache_dir());
  obs::MetricsRegistry::global()
      .counter("bench_results_seconds_total", {{"dataset", dataset}})
      .add(timer.seconds());
  return results;
}

inline std::string env_bench_dir() {
  if (const char* s = std::getenv("TAAMR_BENCH_DIR")) return s;
  return ".";
}

// Collects the run into a BENCH_<name>.json artifact (schema in
// obs/bench_report.hpp). Construct at the top of main; write() (or the
// destructor) snapshots wall time, the kernel cost counters, memory
// telemetry and whatever paper metrics the bench added, and writes
// $TAAMR_BENCH_DIR/BENCH_<name>.json. Construction force-enables kernel
// cost accounting so the artifact has real FLOP counts even when no
// telemetry env knob is set.
class Reporter {
 public:
  explicit Reporter(std::string name) {
    cost::enable();
    // Arm the sampling profiler (no-op unless TAAMR_PROFILE is set) and
    // name the driver thread so it roots its own flamegraph column.
    obs::Profiler::global();
    set_current_thread_name("bench-main");
    report_.name = std::move(name);
    report_.scale = env_scale();
    report_.seed = env_seed();
    report_.threads = static_cast<std::int64_t>(env_thread_count());
#ifdef TAAMR_GIT_SHA
    report_.git_sha = TAAMR_GIT_SHA;
#endif
#ifdef TAAMR_BUILD_TYPE
    report_.build_type = TAAMR_BUILD_TYPE;
#endif
  }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  ~Reporter() {
    if (!written_) write();
  }

  // Bench-defined unit of completed work (grid cells, attacked items, ...).
  void add_examples(double n) { report_.examples += n; }

  void add_metric(std::string name, obs::Labels labels, double value) {
    report_.metrics.push_back({std::move(name), std::move(labels), value});
  }

  // Bench-specific config entry, emitted as an extra key of the artifact's
  // config object (e.g. serve_load's requested Zipf alpha).
  void add_config(std::string name, double value) {
    report_.extra_config.emplace_back(std::move(name), value);
  }

  // Finalizes counters and writes the artifact. Idempotent; returns the
  // path written.
  std::string write() {
    written_ = true;
    report_.wall_seconds = wall_.seconds();
    report_.flops_total = 0.0;
    report_.bytes_total = 0.0;
    report_.kernels.clear();
    for (int k = 0; k < static_cast<int>(cost::Kernel::kCount); ++k) {
      const auto kernel = static_cast<cost::Kernel>(k);
      const cost::KernelTotals t = cost::totals(kernel);
      if (t.flops == 0.0 && t.bytes == 0.0) continue;
      report_.kernels.push_back({cost::kernel_name(kernel), t.flops, t.bytes});
      report_.flops_total += t.flops;
      report_.bytes_total += t.bytes;
    }
    report_.peak_rss_bytes = obs::peak_rss_bytes();
    report_.tensor_high_water_bytes = cost::tensor_bytes_high_water();
    const std::string path = env_bench_dir() + "/BENCH_" + report_.name + ".json";
    report_.write_json_file(path);
    log_info() << "bench report: " << path << " (" << Table::fmt(report_.gflops(), 2)
               << " GFLOP/s over " << Table::fmt(report_.wall_seconds, 1) << "s)";
    return path;
  }

  obs::BenchReport& report() { return report_; }

 private:
  obs::BenchReport report_;
  Stopwatch wall_;
  bool written_ = false;
};

// Books a full experiment-grid result set into the report: one labeled
// entry per paper metric per grid cell, the per-dataset sanity metrics, and
// cells.size() examples.
inline void report_results(Reporter& reporter, const core::DatasetResults& r) {
  const obs::Labels ds = {{"dataset", r.dataset}};
  reporter.add_metric("classifier_accuracy", ds, r.classifier_accuracy);
  reporter.add_metric("auc", {{"dataset", r.dataset}, {"model", "VBPR"}}, r.vbpr_auc);
  reporter.add_metric("auc", {{"dataset", r.dataset}, {"model", "AMR"}}, r.amr_auc);
  reporter.add_metric("hr", {{"dataset", r.dataset}, {"model", "VBPR"}}, r.vbpr_hr);
  reporter.add_metric("hr", {{"dataset", r.dataset}, {"model", "AMR"}}, r.amr_hr);
  for (const core::CellResult& cell : r.cells) {
    obs::Labels labels = {{"dataset", r.dataset},
                          {"model", cell.model},
                          {"attack", cell.attack},
                          {"eps", Table::fmt(cell.eps_255, 0)},
                          {"scenario", cell.semantically_similar ? "similar"
                                                                 : "dissimilar"}};
    reporter.add_metric("chr_before_source", labels, cell.chr_before_source);
    reporter.add_metric("chr_after_source", labels, cell.chr_after_source);
    reporter.add_metric("success_rate", labels, cell.success_rate);
    reporter.add_metric("psnr", labels, cell.psnr);
    reporter.add_metric("ssim", labels, cell.ssim);
    reporter.add_metric("psm", labels, cell.psm);
  }
  reporter.add_examples(static_cast<double>(r.cells.size()));
}

}  // namespace taamr::bench
