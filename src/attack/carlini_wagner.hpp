// Carlini & Wagner attack (S&P 2017), the targeted-attack reference the
// paper cites as [8]. L2 variant: minimize
//     || x* - x ||_2^2 + c * f(x*)
// with the logit-margin loss f(x*) = max(max_{j!=t} Z_j - Z_t, -kappa),
// the change of variables x* = (tanh(w) + 1) / 2 guaranteeing box
// constraints, and an outer binary search on the trade-off constant c.
#pragma once

#include "attack/attack.hpp"

namespace taamr::attack {

struct CwConfig {
  std::int64_t iterations = 100;        // inner gradient-descent steps
  std::int64_t binary_search_steps = 4; // outer search on c
  float initial_c = 1.0f;
  float learning_rate = 0.05f;          // step size in w-space
  float confidence = 0.0f;              // kappa: demanded logit margin
  float clip_min = 0.0f;
  float clip_max = 1.0f;

  void validate() const;
};

class CarliniWagner {
 public:
  explicit CarliniWagner(CwConfig config);

  // Targeted attack: returns the adversarial examples with the smallest
  // found L2 distortion that are classified as labels[i]; images for which
  // no c in the search succeeds are returned unchanged.
  Tensor perturb(nn::Classifier& classifier, const Tensor& images,
                 const std::vector<std::int64_t>& labels);

  std::string name() const { return "C&W-L2"; }
  const CwConfig& config() const { return config_; }

  // Mean L2 distortion of the successful examples in the last perturb()
  // call (0 when none succeeded), and the success count.
  double last_mean_l2() const { return last_mean_l2_; }
  std::int64_t last_successes() const { return last_successes_; }

 private:
  CwConfig config_;
  double last_mean_l2_ = 0.0;
  std::int64_t last_successes_ = 0;
};

}  // namespace taamr::attack
