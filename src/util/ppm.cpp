#include "util/ppm.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace taamr {

void write_ppm(const std::string& path, const Tensor& image, int upscale) {
  if (image.ndim() != 3 || image.dim(0) != 3) {
    throw std::invalid_argument("write_ppm: expected [3, H, W] image");
  }
  if (upscale < 1) throw std::invalid_argument("write_ppm: upscale must be >= 1");
  const std::int64_t h = image.dim(1), w = image.dim(2);
  const std::int64_t out_h = h * upscale, out_w = w * upscale;

  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_ppm: cannot open " + path);
  os << "P6\n" << out_w << " " << out_h << "\n255\n";

  std::vector<unsigned char> row(static_cast<std::size_t>(out_w) * 3);
  for (std::int64_t y = 0; y < out_h; ++y) {
    const std::int64_t sy = y / upscale;
    for (std::int64_t x = 0; x < out_w; ++x) {
      const std::int64_t sx = x / upscale;
      for (int c = 0; c < 3; ++c) {
        const float v = std::clamp(image.at(c, sy, sx), 0.0f, 1.0f);
        row[static_cast<std::size_t>(x) * 3 + static_cast<std::size_t>(c)] =
            static_cast<unsigned char>(v * 255.0f + 0.5f);
      }
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  if (!os) throw std::runtime_error("write_ppm: write failed for " + path);
}

}  // namespace taamr
