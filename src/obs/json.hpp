// Minimal JSON support for the observability subsystem: string escaping for
// the writers (metrics snapshot, trace file, JSONL run log) and a small
// recursive-descent parser used by tools/trace_summary and the tests to
// round-trip what the writers emit. Not a general-purpose JSON library —
// no surrogate-pair decoding, numbers are doubles.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace taamr::obs::json {

// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
std::string escape(std::string_view s);

// Formats a double the way the obs writers do: shortest form that survives
// a parse round-trip at ~9 significant digits; non-finite values become 0.
std::string number(double v);

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
};

// Parses a complete JSON document. Throws std::runtime_error (with a byte
// offset) on malformed input or trailing garbage.
Value parse(std::string_view text);

}  // namespace taamr::obs::json
