#include "recsys/amr.hpp"

#include "util/logging.hpp"

namespace taamr::recsys {

namespace {
VbprConfig with_epochs(VbprConfig config, std::int64_t warm, std::int64_t adv) {
  config.epochs = warm + adv;  // informational; Amr::fit drives the loop
  return config;
}
}  // namespace

Amr::Amr(const data::ImplicitDataset& dataset, const Tensor& raw_features,
         AmrConfig config, Rng& rng)
    : Vbpr(dataset, raw_features,
           with_epochs(config.vbpr, config.warm_epochs, config.adversarial_epochs), rng),
      amr_config_(config) {}

void Amr::fit(const data::ImplicitDataset& dataset, Rng& rng, bool verbose) {
  for (std::int64_t epoch = 0; epoch < amr_config_.warm_epochs; ++epoch) {
    const float loss = train_epoch(dataset, rng);
    if (verbose && (epoch + 1) % 20 == 0) {
      log_info() << "amr warm epoch " << (epoch + 1) << "/" << amr_config_.warm_epochs
                 << " loss=" << loss;
    }
  }
  for (std::int64_t epoch = 0; epoch < amr_config_.adversarial_epochs; ++epoch) {
    const float loss = train_epoch(dataset, rng, amr_config_.adversarial);
    if (verbose && (epoch + 1) % 20 == 0) {
      log_info() << "amr adversarial epoch " << (epoch + 1) << "/"
                 << amr_config_.adversarial_epochs << " loss=" << loss;
    }
  }
  rebuild_caches();
}

}  // namespace taamr::recsys
