// Pins the SIMD kernel layer's dispatch rules and the scalar-vs-AVX2
// tolerance contract documented in tensor/simd/dispatch.hpp: elementwise
// kernels and reductions must agree bitwise across variants, GEMM within an
// epsilon, and within one variant GEMM must be bitwise-stable under any row
// partitioning. AVX2 cases skip on hosts (or builds) without AVX2+FMA.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/simd/dispatch.hpp"
#include "util/rng.hpp"

namespace taamr {
namespace {

std::vector<float> random_vec(std::int64_t n, Rng& rng, float lo = -1.0f,
                              float hi = 1.0f) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.uniform_f(lo, hi);
  return v;
}

const simd::Kernels& scalar() {
  return *simd::kernels_for(simd::Variant::kScalar);
}

// Fetches the AVX2 table or skips the test on hosts/builds without it.
#define REQUIRE_AVX2_OR_SKIP(avx2_var)                              \
  if (!simd::avx2_supported()) {                                    \
    GTEST_SKIP() << "AVX2+FMA unavailable on this host or build";   \
  }                                                                 \
  const simd::Kernels& avx2_var = *simd::kernels_for(simd::Variant::kAvx2)

TEST(SimdDispatch, ResolveVariantPinsTheRules) {
  using simd::Variant;
  // Unset: probe decides.
  EXPECT_EQ(simd::resolve_variant(nullptr, true), Variant::kAvx2);
  EXPECT_EQ(simd::resolve_variant(nullptr, false), Variant::kScalar);
  EXPECT_EQ(simd::resolve_variant("auto", true), Variant::kAvx2);
  EXPECT_EQ(simd::resolve_variant("auto", false), Variant::kScalar);
  // Forced off always wins.
  EXPECT_EQ(simd::resolve_variant("off", true), Variant::kScalar);
  EXPECT_EQ(simd::resolve_variant("scalar", true), Variant::kScalar);
  // Requested AVX2 degrades gracefully when unavailable.
  EXPECT_EQ(simd::resolve_variant("avx2", true), Variant::kAvx2);
  EXPECT_EQ(simd::resolve_variant("avx2", false), Variant::kScalar);
  // Unknown values warn and fall back to the probe.
  EXPECT_EQ(simd::resolve_variant("bogus", true), Variant::kAvx2);
  EXPECT_EQ(simd::resolve_variant("bogus", false), Variant::kScalar);
}

TEST(SimdDispatch, TablesAndNames) {
  ASSERT_NE(simd::kernels_for(simd::Variant::kScalar), nullptr);
  EXPECT_STREQ(simd::variant_name(simd::Variant::kScalar), "scalar");
  EXPECT_STREQ(simd::variant_name(simd::Variant::kAvx2), "avx2");
  // The active table is one of the two variant tables.
  EXPECT_EQ(&simd::active(), simd::kernels_for(simd::active_variant()));
  EXPECT_STREQ(simd::active_variant_name(),
               simd::variant_name(simd::active_variant()));
  if (simd::avx2_supported()) {
    EXPECT_NE(simd::kernels_for(simd::Variant::kAvx2), nullptr);
  }
}

TEST(SimdParity, GemmWithinEpsilonAcrossRemainderShapes) {
  REQUIRE_AVX2_OR_SKIP(avx2);
  Rng rng(42);
  // Shapes straddle every microkernel edge: m covers the 6-row tile and its
  // 1..5-row remainders, n covers the 16/8-wide paths and masked tails, k
  // covers the blocked and remainder k-loops.
  for (std::int64_t m : {1, 5, 6, 7, 64, 67}) {
    for (std::int64_t n : {1, 8, 16, 17, 33}) {
      for (std::int64_t k : {1, 3, 64, 65}) {
        const auto a = random_vec(m * k, rng);
        const auto b = random_vec(k * n, rng);
        std::vector<float> c_s(static_cast<std::size_t>(m * n), 0.0f);
        std::vector<float> c_v(static_cast<std::size_t>(m * n), 0.0f);
        scalar().gemm_panel(c_s.data(), a.data(), b.data(), 0, m, k, n);
        avx2.gemm_panel(c_v.data(), a.data(), b.data(), 0, m, k, n);
        for (std::int64_t i = 0; i < m * n; ++i) {
          EXPECT_NEAR(c_s[static_cast<std::size_t>(i)],
                      c_v[static_cast<std::size_t>(i)], 1e-4f)
              << "m=" << m << " n=" << n << " k=" << k << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdParity, GemmRowPartitionIsBitwiseStablePerVariant) {
  // Rows accumulate independently, so computing [0, m) as one panel or as
  // arbitrary sub-panels must be bitwise-identical — this is what preserves
  // the serial-vs-pooled memcmp identity in ops::gemm_nn_blocked.
  Rng rng(43);
  const std::int64_t m = 13, k = 37, n = 29;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  for (simd::Variant v : {simd::Variant::kScalar, simd::Variant::kAvx2}) {
    const simd::Kernels* kern = simd::kernels_for(v);
    if (kern == nullptr || (v == simd::Variant::kAvx2 && !simd::avx2_supported())) {
      continue;
    }
    std::vector<float> whole(static_cast<std::size_t>(m * n), 0.0f);
    std::vector<float> split(static_cast<std::size_t>(m * n), 0.0f);
    kern->gemm_panel(whole.data(), a.data(), b.data(), 0, m, k, n);
    kern->gemm_panel(split.data(), a.data(), b.data(), 0, 4, k, n);
    kern->gemm_panel(split.data(), a.data(), b.data(), 4, 11, k, n);
    kern->gemm_panel(split.data(), a.data(), b.data(), 11, m, k, n);
    EXPECT_EQ(std::memcmp(whole.data(), split.data(),
                          whole.size() * sizeof(float)),
              0)
        << simd::variant_name(v);
  }
}

TEST(SimdParity, ElementwiseKernelsAreBitwiseIdentical) {
  REQUIRE_AVX2_OR_SKIP(avx2);
  Rng rng(44);
  // Sizes cover full 8-lane blocks, tails, and the tiny-n path.
  for (std::int64_t n : {1, 7, 8, 9, 64, 1000, 1003}) {
    const auto base = random_vec(n, rng, -2.0f, 2.0f);
    const auto other = random_vec(n, rng, -2.0f, 2.0f);
    const float s = rng.uniform_f(-1.5f, 1.5f);

    const auto check = [&](const char* what, auto&& apply) {
      auto lhs = base;
      auto rhs = base;
      apply(scalar(), lhs);
      apply(avx2, rhs);
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(lhs[static_cast<std::size_t>(i)],
                  rhs[static_cast<std::size_t>(i)])
            << what << " n=" << n << " i=" << i;
      }
    };
    using K = simd::Kernels;
    check("add", [&](const K& k, std::vector<float>& a) { k.add(a.data(), other.data(), n); });
    check("sub", [&](const K& k, std::vector<float>& a) { k.sub(a.data(), other.data(), n); });
    check("mul", [&](const K& k, std::vector<float>& a) { k.mul(a.data(), other.data(), n); });
    check("scale", [&](const K& k, std::vector<float>& a) { k.scale(a.data(), s, n); });
    check("add_scalar", [&](const K& k, std::vector<float>& a) { k.add_scalar(a.data(), s, n); });
    check("axpy", [&](const K& k, std::vector<float>& a) { k.axpy(a.data(), s, other.data(), n); });
    check("clamp", [&](const K& k, std::vector<float>& a) { k.clamp(a.data(), -0.5f, 0.75f, n); });
    check("sign", [&](const K& k, std::vector<float>& a) { k.sign(a.data(), n); });
    check("project_linf", [&](const K& k, std::vector<float>& a) {
      k.project_linf(a.data(), other.data(), 0.3f, 0.0f, 1.0f, n);
    });
  }
}

TEST(SimdParity, SignHandlesZeroExactly) {
  REQUIRE_AVX2_OR_SKIP(avx2);
  std::vector<float> v = {-3.5f, -0.0f, 0.0f, 2.0f, -1e-30f, 1e-30f, 7.0f, 0.0f, -2.0f};
  auto s = v, a = v;
  const std::int64_t n = static_cast<std::int64_t>(v.size());
  scalar().sign(s.data(), n);
  avx2.sign(a.data(), n);
  const std::vector<float> expect = {-1.0f, 0.0f, 0.0f, 1.0f, -1.0f,
                                     1.0f,  1.0f, 0.0f, -1.0f};
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(s[i], expect[i]) << i;
    EXPECT_EQ(a[i], expect[i]) << i;
  }
}

TEST(SimdParity, ReductionsAreBitwiseIdentical) {
  REQUIRE_AVX2_OR_SKIP(avx2);
  Rng rng(45);
  for (std::int64_t n : {1, 3, 4, 5, 7, 8, 9, 31, 32, 1000, 1003}) {
    const auto a = random_vec(n, rng, -3.0f, 3.0f);
    const auto b = random_vec(n, rng, -3.0f, 3.0f);
    EXPECT_EQ(scalar().sum(a.data(), n), avx2.sum(a.data(), n)) << n;
    EXPECT_EQ(scalar().sum_f32(a.data(), n), avx2.sum_f32(a.data(), n)) << n;
    EXPECT_EQ(scalar().dot(a.data(), b.data(), n), avx2.dot(a.data(), b.data(), n)) << n;
    EXPECT_EQ(scalar().squared_distance(a.data(), b.data(), n),
              avx2.squared_distance(a.data(), b.data(), n))
        << n;
    EXPECT_EQ(scalar().max(a.data(), n), avx2.max(a.data(), n)) << n;
    EXPECT_EQ(scalar().min(a.data(), n), avx2.min(a.data(), n)) << n;
    EXPECT_EQ(scalar().max_abs(a.data(), n), avx2.max_abs(a.data(), n)) << n;
    EXPECT_EQ(scalar().max_abs_diff(a.data(), b.data(), n),
              avx2.max_abs_diff(a.data(), b.data(), n))
        << n;
  }
}

TEST(SimdParity, ReductionsMatchDoubleReferenceClosely) {
  // The lane-striped spec is not plain left-to-right summation; sanity-check
  // it against a double-precision reference so the spec itself stays honest.
  REQUIRE_AVX2_OR_SKIP(avx2);
  Rng rng(46);
  const std::int64_t n = 1003;
  const auto a = random_vec(n, rng, -1.0f, 1.0f);
  double ref = 0.0;
  for (std::int64_t i = 0; i < n; ++i) ref += static_cast<double>(a[static_cast<std::size_t>(i)]);
  EXPECT_NEAR(avx2.sum(a.data(), n), ref, 1e-9 * n);
}

}  // namespace
}  // namespace taamr
